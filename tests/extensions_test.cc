// Tests for the extension features: hierarchical collectives, chunked
// prefill (SARATHI-style piggybacking), and the roofline report.

#include <gtest/gtest.h>

#include "src/collectives/hierarchical.h"
#include "src/hw/catalog.h"
#include "src/roofline/chunked_prefill.h"
#include "src/roofline/report.h"
#include "src/util/units.h"

namespace litegpu {
namespace {

// --- hierarchical collectives ---

HierarchicalFabric LiteGroups() {
  HierarchicalFabric fabric;
  fabric.group_size = 4;
  fabric.local_link = {300.0 * kGBps, 0.3e-6};   // in-group full mesh
  fabric.global_link = {112.5 * kGBps, 1.5e-6};  // scale-out network
  return fabric;
}

TEST(Hierarchical, SingleGroupUsesLocalLinksOnly) {
  HierarchicalFabric fabric = LiteGroups();
  double hier = HierarchicalAllReduceTime(8.0 * kMB, 4, fabric);
  double local_only = AllReduceTime(8.0 * kMB, 4, fabric.local_link);
  EXPECT_DOUBLE_EQ(hier, local_only);
}

TEST(Hierarchical, BeatsFlatForLargePayloads) {
  // Large payloads: phase-2 traffic shrinks by the group size, so the slow
  // global link carries 4x less data.
  HierarchicalFabric fabric = LiteGroups();
  double payload = 64.0 * kMB;
  double flat = AllReduceTime(payload, 32, fabric.global_link);
  double hier = HierarchicalAllReduceTime(payload, 32, fabric);
  EXPECT_LT(hier, flat);
}

TEST(Hierarchical, FlatCanWinForTinyPayloads) {
  // Tiny payloads are latency-bound; three phases of latency can lose to
  // one flat tree. BestAllReduceTime must pick the winner either way.
  HierarchicalFabric fabric = LiteGroups();
  for (double payload : {1.0 * kKB, 64.0 * kKB, 4.0 * kMB, 64.0 * kMB}) {
    double flat = AllReduceTime(payload, 32, fabric.global_link);
    double hier = HierarchicalAllReduceTime(payload, 32, fabric);
    double best = BestAllReduceTime(payload, 32, fabric);
    EXPECT_DOUBLE_EQ(best, std::min(flat, hier)) << payload;
  }
}

TEST(Hierarchical, NonMultipleFallsBackToFlat) {
  HierarchicalFabric fabric = LiteGroups();
  double hier = HierarchicalAllReduceTime(8.0 * kMB, 30, fabric);  // 30 % 4 != 0
  double flat = AllReduceTime(8.0 * kMB, 30, fabric.global_link);
  EXPECT_DOUBLE_EQ(hier, flat);
}

TEST(Hierarchical, ZeroForTrivialInputs) {
  HierarchicalFabric fabric = LiteGroups();
  EXPECT_DOUBLE_EQ(HierarchicalAllReduceTime(0.0, 32, fabric), 0.0);
  EXPECT_DOUBLE_EQ(HierarchicalAllReduceTime(1e6, 1, fabric), 0.0);
}

// --- chunked prefill ---

struct ChunkSetup {
  TransformerSpec model = Llama3_70B();
  GpuSpec gpu = LiteMemBw();
  TpPlan plan = MakeTpPlan(Llama3_70B(), 8).value();
  WorkloadParams workload;
  EngineParams engine;
};

TEST(ChunkedPrefill, FusedStepSlowerThanDecodeAlone) {
  ChunkSetup s;
  ChunkedPrefillConfig config;
  config.chunk_tokens = 512;
  config.decode_batch = 64;
  FusedStepResult r =
      EvaluateFusedStep(s.model, s.gpu, s.plan, config, 0, s.workload, s.engine);
  EXPECT_GT(r.step_s, r.decode_only_s);
  EXPECT_GT(r.tbt_inflation, 1.0);
  EXPECT_GT(r.prefill_tokens_per_s, 0.0);
}

TEST(ChunkedPrefill, StepTimeMonotoneInChunk) {
  ChunkSetup s;
  double prev = 0.0;
  for (int chunk : {64, 256, 1024}) {
    ChunkedPrefillConfig config;
    config.chunk_tokens = chunk;
    config.decode_batch = 64;
    FusedStepResult r =
        EvaluateFusedStep(s.model, s.gpu, s.plan, config, 0, s.workload, s.engine);
    EXPECT_GT(r.step_s, prev) << chunk;
    prev = r.step_s;
  }
}

TEST(ChunkedPrefill, MaxChunkRespectsSlo) {
  ChunkSetup s;
  int chunk = MaxChunkForSlo(s.model, s.gpu, s.plan, 64, s.workload, s.engine);
  ASSERT_GT(chunk, 0);
  ChunkedPrefillConfig at_max;
  at_max.chunk_tokens = chunk;
  at_max.decode_batch = 64;
  FusedStepResult ok = EvaluateFusedStep(s.model, s.gpu, s.plan, at_max,
                                         s.workload.prompt_tokens, s.workload, s.engine);
  EXPECT_LE(ok.step_s, s.workload.tbt_slo_s + 1e-9);
  if (chunk < s.workload.prompt_tokens) {
    ChunkedPrefillConfig over = at_max;
    over.chunk_tokens = chunk + 1;
    FusedStepResult bad = EvaluateFusedStep(s.model, s.gpu, s.plan, over,
                                            s.workload.prompt_tokens, s.workload, s.engine);
    EXPECT_GT(bad.step_s, s.workload.tbt_slo_s);
  }
}

TEST(ChunkedPrefill, SmallerDecodeBatchAllowsBiggerChunks) {
  ChunkSetup s;
  int with_big_batch = MaxChunkForSlo(s.model, s.gpu, s.plan, 128, s.workload, s.engine);
  int with_small_batch = MaxChunkForSlo(s.model, s.gpu, s.plan, 16, s.workload, s.engine);
  EXPECT_GE(with_small_batch, with_big_batch);
}

TEST(ChunkedPrefill, WholePromptLatencyBounded) {
  ChunkSetup s;
  double latency = ChunkedPrefillLatency(s.model, s.gpu, s.plan, 64, s.workload, s.engine);
  ASSERT_GT(latency, 0.0);
  // Chunked prefill under a 50 ms TBT SLO is slower than a dedicated
  // prefill pass but must stay within a small multiple of it.
  PassShape shape{1, s.workload.prompt_tokens, 0};
  ModelWork dedicated = BuildModelWork(s.model, s.plan, Phase::kPrefill, shape);
  double dedicated_s = EvaluatePass(dedicated, s.gpu, s.plan.degree, s.engine).total_s;
  EXPECT_GT(latency, dedicated_s);
  EXPECT_LT(latency, 50.0 * dedicated_s);
}

TEST(ChunkedPrefill, ImpossibleSloReturnsSentinel) {
  ChunkSetup s;
  s.workload.tbt_slo_s = 1e-7;
  EXPECT_EQ(MaxChunkForSlo(s.model, s.gpu, s.plan, 64, s.workload, s.engine), 0);
  EXPECT_LT(ChunkedPrefillLatency(s.model, s.gpu, s.plan, 64, s.workload, s.engine), 0.0);
}

// --- roofline report ---

TEST(RooflineReport, RidgeIntensityMatchesSpecs) {
  EngineParams params;
  // H100: 2000 TFLOPS / 3352 GB/s ~ 597 FLOP/B.
  EXPECT_NEAR(RidgeIntensity(H100(), params), 2000e12 / 3352e9, 1e-6);
}

TEST(RooflineReport, DecodeStagesBelowRidgePrefillAbove) {
  TransformerSpec model = Llama3_70B();
  TpPlan plan = MakeTpPlan(model, 8).value();
  EngineParams params;
  double ridge = RidgeIntensity(H100(), params);

  ModelWork decode = BuildModelWork(model, plan, Phase::kDecode, {64, 1, 1755});
  for (const auto& p : AnalyzePass(decode, H100(), 8, params)) {
    if (p.stage == "attention" || p.stage == "mlp") {
      EXPECT_LT(p.operational_intensity, ridge) << p.stage;
    }
  }
  ModelWork prefill = BuildModelWork(model, plan, Phase::kPrefill, {8, 1500, 0});
  for (const auto& p : AnalyzePass(prefill, H100(), 8, params)) {
    if (p.stage == "mlp" || p.stage == "qkv_proj") {
      EXPECT_GT(p.operational_intensity, ridge) << p.stage;
    }
  }
}

TEST(RooflineReport, AchievedNeverExceedsAttainable) {
  TransformerSpec model = Gpt3_175B();
  TpPlan plan = MakeTpPlan(model, 8).value();
  EngineParams params;
  ModelWork work = BuildModelWork(model, plan, Phase::kDecode, {32, 1, 1755});
  for (const auto& p : AnalyzePass(work, H100(), 8, params)) {
    EXPECT_LE(p.achieved_flops, p.attainable_flops * 1.0001) << p.stage;
    EXPECT_GE(p.time_share, 0.0);
    EXPECT_LE(p.time_share, 1.0 + 1e-9);
  }
}

TEST(RooflineReport, TimeSharesSumToOne) {
  TransformerSpec model = Llama3_70B();
  TpPlan plan = MakeTpPlan(model, 4).value();
  EngineParams params;
  ModelWork work = BuildModelWork(model, plan, Phase::kDecode, {64, 1, 1755});
  double total = 0.0;
  for (const auto& p : AnalyzePass(work, H100(), 4, params)) {
    total += p.time_share;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(RooflineReport, TextRendersStagesAndRidge) {
  TransformerSpec model = Llama3_70B();
  TpPlan plan = MakeTpPlan(model, 8).value();
  EngineParams params;
  ModelWork work = BuildModelWork(model, plan, Phase::kDecode, {64, 1, 1755});
  auto points = AnalyzePass(work, H100(), 8, params);
  std::string text = RooflineReportToText(points, H100(), params);
  EXPECT_NE(text.find("attention"), std::string::npos);
  EXPECT_NE(text.find("ridge"), std::string::npos);
  EXPECT_NE(text.find("^"), std::string::npos);
}

}  // namespace
}  // namespace litegpu
