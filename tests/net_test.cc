#include <gtest/gtest.h>

#include "src/hw/catalog.h"
#include "src/net/params.h"
#include "src/net/topology.h"
#include "src/util/units.h"

namespace litegpu {
namespace {

FabricRequirements LiteFabric() {
  FabricRequirements req;
  req.num_gpus = 32;
  req.per_gpu_bw_bytes_per_s = 112.5 * kGBps;
  req.avg_utilization = 0.3;
  return req;
}

// --- technology parameters ---

TEST(NetParams, CpoBeatsPluggableOnEnergy) {
  // The paper's co-packaged-optics premise: much better power efficiency
  // than pluggable optics.
  EXPECT_LT(CpoLink().pj_per_bit, 0.5 * PluggableLink().pj_per_bit);
}

TEST(NetParams, CpoReachBeatsCopper) {
  EXPECT_GT(CpoLink().max_reach_m, 10.0 * CopperLink().max_reach_m);
}

TEST(NetParams, CircuitSwitchClaims) {
  // Paper Section 3 / ref [6]: (i) >50% better energy efficiency,
  // (ii) lower latency, (iii) more ports at high bandwidth.
  SwitchTechSpec packet = PacketSwitch();
  SwitchTechSpec circuit = CircuitSwitch();
  EXPECT_LT(circuit.pj_per_bit, 0.5 * packet.pj_per_bit);
  EXPECT_LT(circuit.latency_s, packet.latency_s);
  EXPECT_GT(circuit.radix, packet.radix);
  EXPECT_GE(circuit.port_bw_bytes_per_s, packet.port_bw_bytes_per_s);
}

// --- direct-connect groups ---

TEST(Topology, DirectConnectGroupCounts) {
  TopologyReport r = BuildDirectConnectGroups(LiteFabric(), 4, CpoLink());
  // 8 groups x C(4,2)=6 links.
  EXPECT_EQ(r.num_links, 48);
  EXPECT_EQ(r.num_switches, 0);
  EXPECT_EQ(r.num_transceivers, 96);
  EXPECT_FALSE(r.any_to_any);
  EXPECT_EQ(r.network_blast_radius_gpus, 4);
}

TEST(Topology, DirectConnectCheapestButInflexible) {
  FabricRequirements req = LiteFabric();
  TopologyReport direct = BuildDirectConnectGroups(req, 4, CpoLink());
  TopologyReport flat = BuildFlatSwitched(req, PacketSwitch(), CpoLink());
  EXPECT_LT(direct.capex_usd, flat.capex_usd);
  EXPECT_LT(direct.power_watts, flat.power_watts);
  EXPECT_FALSE(direct.any_to_any);
  EXPECT_TRUE(flat.any_to_any);
}

// --- 2D torus ---

TEST(Topology, TorusStructure) {
  FabricRequirements req = LiteFabric();  // 32 GPUs
  TopologyReport r = BuildTorus2D(req, CpoLink());
  // 6x6 grid covers 32 (rounded to sqrt side): links = 2 * rows * cols.
  EXPECT_EQ(r.num_switches, 0);
  EXPECT_GT(r.num_links, 2 * req.num_gpus - 8);
  EXPECT_TRUE(r.any_to_any);
  EXPECT_EQ(r.network_blast_radius_gpus, 1);
  EXPECT_GT(r.bisection_bw_bytes_per_s, 0.0);
}

TEST(Topology, TorusCheaperThanLeafSpine) {
  FabricRequirements req = LiteFabric();
  req.num_gpus = 256;
  TopologyReport torus = BuildTorus2D(req, CpoLink());
  TopologyReport ls = BuildLeafSpine(req, PacketSwitch(), CpoLink());
  EXPECT_LT(torus.capex_usd, ls.capex_usd);
  EXPECT_LT(torus.power_watts, ls.power_watts);
}

TEST(Topology, TorusHopLatencyGrowsWithScale) {
  FabricRequirements small = LiteFabric();
  FabricRequirements big = LiteFabric();
  big.num_gpus = 1024;
  TopologyReport a = BuildTorus2D(small, CpoLink());
  TopologyReport b = BuildTorus2D(big, CpoLink());
  EXPECT_GT(b.max_hop_latency_s, a.max_hop_latency_s);
}

TEST(Topology, TorusBisectionScalesWithSide) {
  FabricRequirements a = LiteFabric();
  a.num_gpus = 64;
  FabricRequirements b = LiteFabric();
  b.num_gpus = 256;
  double bis_a = BuildTorus2D(a, CpoLink()).bisection_bw_bytes_per_s;
  double bis_b = BuildTorus2D(b, CpoLink()).bisection_bw_bytes_per_s;
  EXPECT_NEAR(bis_b / bis_a, 2.0, 0.3);  // side doubles
}

// --- switched fabrics ---

TEST(Topology, FlatSwitchedPortMath) {
  FabricRequirements req = LiteFabric();
  TopologyReport r = BuildFlatSwitched(req, PacketSwitch(), CpoLink());
  // 112.5 GB/s per GPU over 100 GB/s ports -> 2 planes; 32 <= radix 64 ->
  // 1 switch per plane.
  EXPECT_EQ(r.num_switches, 2);
  EXPECT_EQ(r.num_links, 64);
  EXPECT_EQ(r.num_switch_ports, 64);
  EXPECT_EQ(r.max_switch_hops, 1);
}

TEST(Topology, LeafSpineHasThreeHops) {
  TopologyReport r = BuildLeafSpine(LiteFabric(), PacketSwitch(), CpoLink());
  EXPECT_EQ(r.max_switch_hops, 3);
  EXPECT_GT(r.num_switches, 2);
  EXPECT_TRUE(r.any_to_any);
}

TEST(Topology, LeafSpineCostsMoreThanFlat) {
  FabricRequirements req = LiteFabric();
  TopologyReport flat = BuildFlatSwitched(req, PacketSwitch(), CpoLink());
  TopologyReport ls = BuildLeafSpine(req, PacketSwitch(), CpoLink());
  EXPECT_GT(ls.capex_usd, flat.capex_usd);
  EXPECT_GT(ls.num_links, flat.num_links);
}

TEST(Topology, CircuitSwitchedSingleHopLowPower) {
  FabricRequirements req = LiteFabric();
  TopologyReport circuit = BuildFlatCircuitSwitched(req, CircuitSwitch(), CpoLink());
  TopologyReport packet = BuildFlatSwitched(req, PacketSwitch(), CpoLink());
  EXPECT_EQ(circuit.max_switch_hops, 1);
  EXPECT_LT(circuit.power_watts, packet.power_watts);
  EXPECT_LT(circuit.max_hop_latency_s, packet.max_hop_latency_s);
}

TEST(Topology, PaperClaimCircuitSavesHalfTheEnergyAtScale) {
  FabricRequirements req = LiteFabric();
  req.num_gpus = 512;
  TopologyReport packet = BuildLeafSpine(req, PacketSwitch(), CpoLink());
  TopologyReport circuit = BuildFlatCircuitSwitched(req, CircuitSwitch(), CpoLink());
  EXPECT_LT(circuit.power_watts, 0.5 * packet.power_watts);
}

TEST(Topology, PowerScalesWithUtilization) {
  FabricRequirements lo = LiteFabric();
  lo.avg_utilization = 0.1;
  FabricRequirements hi = LiteFabric();
  hi.avg_utilization = 0.9;
  TopologyReport a = BuildFlatSwitched(lo, PacketSwitch(), CpoLink());
  TopologyReport b = BuildFlatSwitched(hi, PacketSwitch(), CpoLink());
  EXPECT_NEAR(b.power_watts / a.power_watts, 9.0, 1e-6);
}

TEST(Topology, ComparisonTableRendersAllKinds) {
  FabricRequirements req = LiteFabric();
  std::vector<TopologyReport> reports = {
      BuildDirectConnectGroups(req, 4, CpoLink()),
      BuildFlatSwitched(req, PacketSwitch(), CpoLink()),
      BuildLeafSpine(req, PacketSwitch(), CpoLink()),
      BuildFlatCircuitSwitched(req, CircuitSwitch(), CpoLink()),
  };
  std::string text = TopologyComparisonToText(reports);
  EXPECT_NE(text.find("direct-connect"), std::string::npos);
  EXPECT_NE(text.find("leaf-spine"), std::string::npos);
  EXPECT_NE(text.find("circuit"), std::string::npos);
}

TEST(Topology, LargerClustersNeedMoreGear) {
  FabricRequirements small = LiteFabric();
  FabricRequirements big = LiteFabric();
  big.num_gpus = 256;
  for (auto build : {BuildFlatSwitched, BuildLeafSpine}) {
    TopologyReport a = build(small, PacketSwitch(), CpoLink());
    TopologyReport b = build(big, PacketSwitch(), CpoLink());
    EXPECT_GT(b.num_links, a.num_links);
    EXPECT_GT(b.capex_usd, a.capex_usd);
  }
}

}  // namespace
}  // namespace litegpu
