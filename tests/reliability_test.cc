#include <gtest/gtest.h>

#include <cmath>

#include "src/hw/catalog.h"
#include "src/reliability/failure_model.h"
#include "src/reliability/mc_sim.h"

namespace litegpu {
namespace {

// --- closed-form failure model ---

TEST(FailureModel, ReferenceAfrReproduced) {
  FailureParams params;
  EXPECT_NEAR(GpuAfr(H100(), params), params.reference_afr, 1e-12);
}

TEST(FailureModel, LiteAfrBetweenFloorAndReference) {
  FailureParams params;
  double lite = GpuAfr(Lite(), params);
  EXPECT_GT(lite, params.per_device_floor_afr);
  EXPECT_LT(lite, params.reference_afr);
  // Area component scales 1/4 but the device floor does not.
  double expected =
      params.per_device_floor_afr + (params.reference_afr - params.per_device_floor_afr) / 4.0;
  EXPECT_NEAR(lite, expected, 1e-12);
}

TEST(FailureModel, LiteFleetHasMoreFailuresSmallerBlast) {
  FailureParams params;
  double h100_fleet = ClusterFailuresPerYear(H100(), 8, params);
  double lite_fleet = ClusterFailuresPerYear(Lite(), 32, params);
  // More devices -> more failure events...
  EXPECT_GT(lite_fleet, h100_fleet);
  // ...but each removes 4x less of the cluster.
  EXPECT_NEAR(BlastRadiusFraction(32), BlastRadiusFraction(8) / 4.0, 1e-12);
}

TEST(FailureModel, AvailabilityDecreasesWithInstanceSize) {
  FailureParams params;
  double prev = 1.0;
  for (int k : {1, 2, 4, 8, 16, 32}) {
    double a = InstanceAvailabilityNoSpares(Lite(), k, params);
    EXPECT_LT(a, prev);
    EXPECT_GT(a, 0.9);
    prev = a;
  }
}

TEST(FailureModel, SparesImproveAvailability) {
  FailureParams params;
  double none = InstanceAvailabilityWithSpares(Lite(), 32, 4, 0, params);
  double one = InstanceAvailabilityWithSpares(Lite(), 32, 4, 1, params);
  double four = InstanceAvailabilityWithSpares(Lite(), 32, 4, 4, params);
  EXPECT_GT(one, none);
  EXPECT_GE(four, one);
}

TEST(FailureModel, SpareActivationBoundsAvailability) {
  // With ample spares, downtime per failure ~ activation time only.
  FailureParams params;
  double a = InstanceAvailabilityWithSpares(H100(), 8, 1, 8, params);
  double lambda_h = GpuAfr(H100(), params) / 8766.0;
  double activation_h = params.spare_activation_minutes / 60.0;
  double expected = std::pow(1.0 / (1.0 + lambda_h * activation_h), 8);
  EXPECT_NEAR(a, expected, 1e-6);
}

// --- Monte-Carlo simulator ---

TEST(McSim, FailureRateMatchesClosedForm) {
  McSimConfig config;
  config.gpus_per_instance = 8;
  config.num_instances = 4;
  config.sim_years = 500.0;
  McSimResult r = SimulateAvailability(H100(), config);
  double expected = ClusterFailuresPerYear(H100(), 32, config.failure);
  EXPECT_NEAR(r.failures_per_year, expected, 0.15 * expected);
}

TEST(McSim, AvailabilityMatchesClosedFormNoSpares) {
  McSimConfig config;
  config.gpus_per_instance = 8;
  config.num_instances = 4;
  config.num_spares = 0;
  config.sim_years = 500.0;
  McSimResult r = SimulateAvailability(H100(), config);
  double expected = InstanceAvailabilityNoSpares(H100(), 8, config.failure);
  EXPECT_NEAR(r.instance_availability, expected, 0.002);
}

TEST(McSim, AvailabilityMatchesClosedFormWithSpares) {
  McSimConfig config;
  config.gpus_per_instance = 32;
  config.num_instances = 4;
  config.num_spares = 2;
  config.sim_years = 500.0;
  McSimResult r = SimulateAvailability(Lite(), config);
  double expected =
      InstanceAvailabilityWithSpares(Lite(), 32, 4, 2, config.failure);
  EXPECT_NEAR(r.instance_availability, expected, 0.002);
}

TEST(McSim, Deterministic) {
  McSimConfig config;
  config.sim_years = 50.0;
  McSimResult a = SimulateAvailability(Lite(), config);
  McSimResult b = SimulateAvailability(Lite(), config);
  EXPECT_EQ(a.num_failures, b.num_failures);
  EXPECT_DOUBLE_EQ(a.instance_availability, b.instance_availability);
}

TEST(McSim, ShardedTrialsBitIdenticalAtAnyThreadCount) {
  McSimConfig serial;
  serial.gpus_per_instance = 32;
  serial.num_instances = 4;
  serial.num_spares = 2;
  serial.sim_years = 20.0;
  serial.num_trials = 8;
  serial.exec.threads = 1;
  McSimResult base = SimulateAvailability(Lite(), serial);
  for (int threads : {2, 4, 8}) {
    McSimConfig sharded = serial;
    sharded.exec.threads = threads;
    McSimResult r = SimulateAvailability(Lite(), sharded);
    EXPECT_EQ(r.num_failures, base.num_failures) << threads;
    EXPECT_EQ(r.unmasked_failures, base.unmasked_failures) << threads;
    // Bitwise equality, not EXPECT_DOUBLE_EQ: aggregation order is fixed.
    EXPECT_EQ(r.instance_availability, base.instance_availability) << threads;
    EXPECT_EQ(r.failures_per_year, base.failures_per_year) << threads;
  }
}

TEST(McSim, SingleTrialMatchesOriginalSerialSimulator) {
  // num_trials=1 must reproduce the pre-sharding simulator: trial 0 seeds
  // the RNG with config.seed directly.
  McSimConfig config;
  config.sim_years = 50.0;
  McSimResult a = SimulateAvailability(Lite(), config);
  McSimConfig explicit_trials = config;
  explicit_trials.num_trials = 1;
  explicit_trials.exec.threads = 4;
  McSimResult b = SimulateAvailability(Lite(), explicit_trials);
  EXPECT_EQ(a.num_failures, b.num_failures);
  EXPECT_EQ(a.instance_availability, b.instance_availability);
}

TEST(McSim, MoreTrialsTightenAgreementWithClosedForm) {
  McSimConfig config;
  config.gpus_per_instance = 8;
  config.num_instances = 4;
  config.sim_years = 100.0;
  config.num_trials = 8;
  McSimResult r = SimulateAvailability(H100(), config);
  double expected = InstanceAvailabilityNoSpares(H100(), 8, config.failure);
  EXPECT_NEAR(r.instance_availability, expected, 0.002);
}

TEST(McSim, SparesReduceUnmaskedFailures) {
  McSimConfig none;
  none.gpus_per_instance = 8;
  none.num_instances = 4;
  none.num_spares = 0;
  none.sim_years = 200.0;
  McSimConfig spared = none;
  spared.num_spares = 2;
  McSimResult a = SimulateAvailability(H100(), none);
  McSimResult b = SimulateAvailability(H100(), spared);
  EXPECT_EQ(a.unmasked_failures, a.num_failures);  // no spares: all unmasked
  EXPECT_LT(b.unmasked_failures, a.unmasked_failures / 10 + 5);
  EXPECT_GT(b.instance_availability, a.instance_availability);
}

TEST(McSim, EqualBudgetSparingFavorsLite) {
  // One H100 spare budget buys four Lite spares; compare fleets of equal
  // capacity (4 instances each) at equal spare budget.
  McSimConfig h100_config;
  h100_config.gpus_per_instance = 8;
  h100_config.num_instances = 4;
  h100_config.num_spares = 1;  // one H100
  h100_config.sim_years = 300.0;
  McSimConfig lite_config;
  lite_config.gpus_per_instance = 32;
  lite_config.num_instances = 4;
  lite_config.num_spares = 4;  // same dollars in Lite spares
  lite_config.sim_years = 300.0;
  McSimResult h100 = SimulateAvailability(H100(), h100_config);
  McSimResult lite = SimulateAvailability(Lite(), lite_config);
  // Both should mask essentially all failures; Lite must be at least
  // competitive despite 4x the device count.
  EXPECT_GT(lite.instance_availability, 0.999);
  EXPECT_GT(h100.instance_availability, 0.999);
  EXPECT_NEAR(lite.instance_availability, h100.instance_availability, 0.0005);
}

}  // namespace
}  // namespace litegpu
