#include <gtest/gtest.h>

#include "src/hw/catalog.h"
#include "src/power/cluster_energy.h"
#include "src/power/cooling.h"
#include "src/power/dvfs.h"

namespace litegpu {
namespace {

// --- DVFS ---

TEST(Dvfs, NominalPowerAtUnitFrequency) {
  DvfsModel m;
  EXPECT_DOUBLE_EQ(PowerAtFrequency(m, 1.0), m.nominal_power_watts);
}

TEST(Dvfs, PowerMonotoneInFrequency) {
  DvfsModel m;
  double prev = 0.0;
  for (double f = m.min_frequency_scale; f <= m.max_frequency_scale; f += 0.05) {
    double p = PowerAtFrequency(m, f);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(Dvfs, StaticFloorAtMinFrequency) {
  DvfsModel m;
  double p = PowerAtFrequency(m, m.min_frequency_scale);
  EXPECT_GT(p, m.nominal_power_watts * m.static_fraction);
  EXPECT_LT(p, m.nominal_power_watts * 0.6);
}

TEST(Dvfs, ClampsOutOfRange) {
  DvfsModel m;
  EXPECT_DOUBLE_EQ(PowerAtFrequency(m, 0.0), PowerAtFrequency(m, m.min_frequency_scale));
  EXPECT_DOUBLE_EQ(PowerAtFrequency(m, 5.0), PowerAtFrequency(m, m.max_frequency_scale));
}

TEST(Dvfs, SuperlinearOverclockCost) {
  DvfsModel m;
  double p125 = PowerAtFrequency(m, 1.25);
  // 25% more throughput should cost well more than 25% more power.
  EXPECT_GT(p125 / m.nominal_power_watts, 1.3);
}

TEST(Dvfs, EfficiencyPeaksBelowNominal) {
  DvfsModel m;
  // Down-clocked operation is more efficient per unit of work.
  EXPECT_GT(RelativeEfficiency(m, 0.6), 1.0);
  EXPECT_NEAR(RelativeEfficiency(m, 1.0), 1.0, 1e-12);
  EXPECT_LT(RelativeEfficiency(m, 1.25), 1.0);
}

TEST(Dvfs, FrequencyForLoadClamped) {
  DvfsModel m;
  EXPECT_DOUBLE_EQ(FrequencyForLoad(m, 0.0), m.min_frequency_scale);
  EXPECT_DOUBLE_EQ(FrequencyForLoad(m, 0.7), 0.7);
  EXPECT_DOUBLE_EQ(FrequencyForLoad(m, 2.0), m.max_frequency_scale);
}

// --- cooling ---

TEST(Cooling, H100NeedsLiquidLiteNeedsAir) {
  // Paper Section 2: "Smaller single-die GPUs can be air-cooled".
  EXPECT_EQ(RequiredRegime(H100()), CoolingRegime::kLiquidCold);
  EXPECT_EQ(RequiredRegime(Lite()), CoolingRegime::kForcedAir);
  EXPECT_EQ(RequiredRegime(B200()), CoolingRegime::kLiquidCold);
}

TEST(Cooling, LiteRackStaysOnAirH100RackDoesNot) {
  // Paper Section 3: "This can eliminate the need for liquid cooling racks".
  EXPECT_TRUE(RackStaysOnAir(Lite(), 32));
  EXPECT_FALSE(RackStaysOnAir(H100(), 8));
}

TEST(Cooling, OverheadLowerForLiquid) {
  CoolingThresholds t;
  double air = CoolingOverheadWatts(Lite(), 32, t);
  double liquid = CoolingOverheadWatts(H100(), 8, t);
  // Same order of IT power (5.28 vs 5.6 kW); liquid overhead fraction is
  // smaller even though H100 IT power is higher.
  EXPECT_NEAR(air / (Lite().tdp_watts * 32), t.air_overhead, 1e-12);
  EXPECT_NEAR(liquid / (H100().tdp_watts * 8), t.liquid_overhead, 1e-12);
}

TEST(Cooling, LiteGetsOverclockHeadroomH100DoesNot) {
  // Paper: Lite-GPUs "can even sustain higher clock frequencies".
  EXPECT_GT(SustainableClockMultiplier(Lite()), 1.05);
  EXPECT_DOUBLE_EQ(SustainableClockMultiplier(H100()), 1.0);
}

// --- cluster energy ---

TEST(ClusterEnergy, BreakdownPositiveAndAdditive) {
  ClusterPowerBreakdown p = ClusterPower(Lite(), 32);
  EXPECT_GT(p.gpu_watts, 0.0);
  EXPECT_GT(p.network_watts, 0.0);
  EXPECT_GT(p.cooling_watts, 0.0);
  EXPECT_NEAR(p.TotalWatts(), p.gpu_watts + p.network_watts + p.cooling_watts, 1e-9);
}

TEST(ClusterEnergy, ScalesWithDeviceCount) {
  ClusterPowerBreakdown one = ClusterPower(Lite(), 1);
  ClusterPowerBreakdown many = ClusterPower(Lite(), 32);
  EXPECT_NEAR(many.TotalWatts(), 32.0 * one.TotalWatts(), 1e-6 * many.TotalWatts());
}

TEST(ClusterEnergy, EnergyPerTokenInverseInThroughput) {
  ClusterPowerBreakdown p = ClusterPower(H100(), 8);
  double slow = EnergyPerToken(p, 1000.0);
  double fast = EnergyPerToken(p, 10000.0);
  EXPECT_NEAR(slow, 10.0 * fast, 1e-9);
  EXPECT_DOUBLE_EQ(EnergyPerToken(p, 0.0), 0.0);
}

TEST(ClusterEnergy, EquivalentClustersComparable) {
  // 32 Lites vs 8 H100s at the same utilization: total GPU power within
  // ~10% (Lite trades a small TDP discount against more network ends).
  ClusterPowerBreakdown lite = ClusterPower(Lite(), 32);
  ClusterPowerBreakdown h100 = ClusterPower(H100(), 8);
  EXPECT_NEAR(lite.gpu_watts, h100.gpu_watts, 0.12 * h100.gpu_watts);
  EXPECT_GT(lite.network_watts, h100.network_watts * 0.9);
}

// --- fleet-compare energy/opex adapter ---

TEST(FleetEnergy, OpexIsClusterPowerAtTheGridRate) {
  // Pinned by hand: the opex line is exactly the knee pool's cluster power
  // (at the study's utilization) priced per kWh, and joules/token is the
  // shared EnergyPerToken on that same breakdown.
  FleetEnergyReport r = FleetEnergyAtKnee(H100(), 8, 0.7, 20000.0, 0.10);
  ClusterPowerParams params;
  params.gpu_utilization = 0.7;
  ClusterPowerBreakdown expected = ClusterPower(H100(), 8, params);
  EXPECT_DOUBLE_EQ(r.power.TotalWatts(), expected.TotalWatts());
  EXPECT_DOUBLE_EQ(r.opex_usd_per_hour, expected.TotalWatts() / 1000.0 * 0.10);
  EXPECT_DOUBLE_EQ(r.joules_per_token, expected.TotalWatts() / 20000.0);
}

TEST(FleetEnergy, UsdPerMtokenPinnedByHand) {
  // $36/h total over 1000 tok/s: 3.6M tokens/hour -> exactly $10/Mtoken.
  EXPECT_DOUBLE_EQ(UsdPerMtokenAtKnee(30.0, 6.0, 1000.0), 10.0);
  // Capex-only and opex-only splits add linearly.
  EXPECT_DOUBLE_EQ(UsdPerMtokenAtKnee(30.0, 0.0, 1000.0) +
                       UsdPerMtokenAtKnee(0.0, 6.0, 1000.0),
                   10.0);
}

TEST(FleetEnergy, NoGoodputMeansInfeasibleNotFree) {
  // A candidate that never met the SLOs has no tokens to spread cost over:
  // the sentinel is negative, never $0/Mtoken.
  EXPECT_LT(UsdPerMtokenAtKnee(30.0, 6.0, 0.0), 0.0);
  EXPECT_LT(UsdPerMtokenAtKnee(30.0, 6.0, -5.0), 0.0);
}

}  // namespace
}  // namespace litegpu
