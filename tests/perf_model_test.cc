#include <gtest/gtest.h>

#include "src/collectives/cost.h"
#include "src/hw/catalog.h"
#include "src/llm/footprint.h"
#include "src/perf/model.h"
#include "src/perf/step_table.h"
#include "src/sched/pools.h"
#include "src/serve/simulator.h"

namespace litegpu {
namespace {

PerfModel MakeModel(const TransformerSpec& model = Llama3_70B(),
                    const GpuSpec& gpu = H100(), int degree = 4) {
  TpPlan plan = MakeTpPlan(model, degree).value();
  return PerfModel(model, gpu, plan, WorkloadParams{});
}

TEST(PerfModel, PrefillBitIdenticalToDirectEvaluation) {
  TransformerSpec model = Llama3_70B();
  GpuSpec gpu = H100();
  TpPlan plan = MakeTpPlan(model, 4).value();
  WorkloadParams workload;
  EngineParams engine;
  PerfModel perf(model, gpu, plan, workload, engine);
  for (int batch : {1, 2, 7, 32, 128}) {
    PrefillResult direct = EvaluatePrefill(model, gpu, plan, batch, workload, engine);
    PrefillResult cached = perf.Prefill(batch);
    EXPECT_EQ(cached.feasible, direct.feasible) << batch;
    EXPECT_EQ(cached.meets_slo, direct.meets_slo) << batch;
    // Bitwise equality, not NEAR: the PerfModel runs the same code path.
    EXPECT_EQ(cached.ttft_s, direct.ttft_s) << batch;
    EXPECT_EQ(cached.tokens_per_s, direct.tokens_per_s) << batch;
    EXPECT_EQ(cached.tokens_per_s_per_sm, direct.tokens_per_s_per_sm) << batch;
    EXPECT_EQ(cached.memory_needed_bytes, direct.memory_needed_bytes) << batch;
  }
}

TEST(PerfModel, DecodeBitIdenticalToDirectEvaluation) {
  TransformerSpec model = Llama3_70B();
  GpuSpec gpu = LiteMemBw();
  TpPlan plan = MakeTpPlan(model, 16).value();
  WorkloadParams workload;
  EngineParams engine;
  PerfModel perf(model, gpu, plan, workload, engine);
  for (int batch : {1, 3, 64, 256}) {
    DecodeResult direct = EvaluateDecode(model, gpu, plan, batch, workload, engine);
    DecodeResult cached = perf.Decode(batch);
    EXPECT_EQ(cached.feasible, direct.feasible) << batch;
    EXPECT_EQ(cached.tbt_s, direct.tbt_s) << batch;
    EXPECT_EQ(cached.tokens_per_s, direct.tokens_per_s) << batch;
    EXPECT_EQ(cached.tokens_per_s_per_sm, direct.tokens_per_s_per_sm) << batch;
    EXPECT_EQ(cached.memory_needed_bytes, direct.memory_needed_bytes) << batch;
  }
}

TEST(PerfModel, CacheHitReturnsIdenticalResultAndCounts) {
  PerfModel perf = MakeModel();
  PerfCacheStats before = perf.cache_stats();
  EXPECT_EQ(before.hits, 0u);
  EXPECT_EQ(before.misses, 0u);

  DecodeResult first = perf.Decode(64);
  DecodeResult again = perf.Decode(64);
  EXPECT_EQ(first.tbt_s, again.tbt_s);
  EXPECT_EQ(first.tokens_per_s_per_sm, again.tokens_per_s_per_sm);

  PerfCacheStats after = perf.cache_stats();
  EXPECT_EQ(after.misses, 1u);
  EXPECT_EQ(after.hits, 1u);
  EXPECT_DOUBLE_EQ(after.HitRate(), 0.5);
}

TEST(PerfModel, ContextExplicitFormsShareTheCache) {
  PerfModel perf = MakeModel();
  WorkloadParams workload;  // defaults: prompt 1500, output 256
  // DecodeStepTime at the workload's worst-case context is the same cache
  // entry as Decode(batch).tbt_s.
  double via_decode = perf.Decode(32).tbt_s;
  uint64_t misses_before = perf.cache_stats().misses;
  double via_step = perf.DecodeStepTime(32, workload.prompt_tokens + workload.output_tokens);
  EXPECT_EQ(via_step, via_decode);
  EXPECT_EQ(perf.cache_stats().misses, misses_before);  // pure hit

  // A different context is a distinct entry with a distinct (smaller) time.
  double shorter = perf.DecodeStepTime(32, 512);
  EXPECT_LT(shorter, via_decode);
  EXPECT_EQ(perf.cache_stats().misses, misses_before + 1);

  // Same for prefill.
  double via_prefill = perf.Prefill(4).ttft_s;
  EXPECT_EQ(perf.PrefillTime(4, workload.prompt_tokens), via_prefill);
  EXPECT_LT(perf.PrefillTime(4, 256), via_prefill);
}

TEST(PerfModel, CollectiveCostMatchesAllReduceTime) {
  TransformerSpec model = Llama3_70B();
  GpuSpec gpu = H100();
  TpPlan plan = MakeTpPlan(model, 8).value();
  EngineParams engine;
  PerfModel perf(model, gpu, plan, WorkloadParams{}, engine);
  LinkModel link;
  link.bandwidth_bytes_per_s = gpu.net_bw_bytes_per_s;
  link.latency_s = engine.network_latency_s;
  double payload = 16.0 * 1024 * 1024;
  EXPECT_EQ(perf.CollectiveCost(payload),
            AllReduceTime(payload, 8, link, engine.collective_algo));
  EXPECT_EQ(perf.CollectiveCost(payload, CollectiveAlgo::kRing),
            AllReduceTime(payload, 8, link, CollectiveAlgo::kRing));
}

TEST(PerfModel, FootprintMatchesFootprintLibrary) {
  TransformerSpec model = Llama3_70B();
  TpPlan plan = MakeTpPlan(model, 4).value();
  PerfModel perf(model, H100(), plan, WorkloadParams{});
  PerfFootprint fp = perf.Footprint();
  EXPECT_EQ(fp.weight_bytes_per_gpu, WeightBytesPerGpu(model, plan));
  EXPECT_EQ(fp.embedding_bytes_per_gpu, EmbeddingWeightBytesPerGpu(model, plan));
  EXPECT_EQ(fp.kv_bytes_per_token_per_gpu, KvBytesPerTokenPerGpu(model, plan));
  EXPECT_EQ(perf.MemoryNeededBytes(8, 1, 1755),
            MemoryNeededPerGpu(model, plan, 8, 1, 1755));
}

TEST(PerfModel, GlobalStatsAggregateAcrossInstances) {
  ResetGlobalPerfCacheStats();
  PerfModel a = MakeModel(Llama3_70B(), H100(), 4);
  PerfModel b = MakeModel(Llama3_70B(), H100(), 8);
  a.Decode(16);
  a.Decode(16);
  b.Decode(16);
  PerfCacheStats global = GlobalPerfCacheStats();
  EXPECT_EQ(global.misses, 2u);  // one per instance
  EXPECT_EQ(global.hits, 1u);
  EXPECT_GT(global.HitRate(), 0.0);
}

TEST(PerfModel, ServeCallbacksComeFromTheModels) {
  TransformerSpec model = Llama3_70B();
  GpuSpec gpu = H100();
  WorkloadParams workload;
  PerfModel prefill(model, gpu, MakeTpPlan(model, 2).value(), workload);
  PerfModel decode(model, gpu, MakeTpPlan(model, 4).value(), workload);
  ServeCallbacks callbacks = MakePerfModelCallbacks(prefill, decode, 8, 256);
  EXPECT_EQ(callbacks.max_prefill_batch, 8);
  EXPECT_EQ(callbacks.max_decode_batch, 256);
  EXPECT_EQ(callbacks.prefill_time(4), prefill.Prefill(4).ttft_s);
  EXPECT_EQ(callbacks.decode_step_time(64), decode.Decode(64).tbt_s);
}

#ifndef NDEBUG
TEST(PerfModelCallbacksDeathTest, DanglingModelTripsTheDebugAssert) {
  // The MakePerfModelCallbacks lifetime contract (docs/architecture.md):
  // the callbacks capture raw references, and debug builds carry the
  // models' liveness tokens so calling through a destroyed model aborts
  // with a named assert instead of reading freed memory.
  TransformerSpec model = Llama3_70B();
  GpuSpec gpu = H100();
  WorkloadParams workload;
  PerfModel decode(model, gpu, MakeTpPlan(model, 4).value(), workload);
  ServeCallbacks callbacks;
  {
    PerfModel prefill(model, gpu, MakeTpPlan(model, 2).value(), workload);
    callbacks = MakePerfModelCallbacks(prefill, decode, 8, 256);
    EXPECT_GT(callbacks.prefill_time(2), 0.0);  // fine while the model lives
  }
  EXPECT_DEATH(callbacks.prefill_time(2), "PerfModel destroyed");
}
#endif

TEST(StepTimeTable, BitIdenticalToTheMemoizedModels) {
  TransformerSpec model = Llama3_70B();
  GpuSpec gpu = H100();
  WorkloadParams workload;
  PerfModel prefill(model, gpu, MakeTpPlan(model, 2).value(), workload);
  PerfModel decode(model, gpu, MakeTpPlan(model, 4).value(), workload);
  StepTimeTable table = StepTimeTable::Build(prefill, decode, 8, 64);
  EXPECT_FALSE(table.empty());
  EXPECT_EQ(table.max_prefill_batch(), 8);
  EXPECT_EQ(table.max_decode_batch(), 64);
  for (int batch = 1; batch <= 8; ++batch) {
    // Bitwise equality: the table is a copy of the same memoized values.
    EXPECT_EQ(table.PrefillTime(batch), prefill.Prefill(batch).ttft_s) << batch;
  }
  for (int batch = 1; batch <= 64; ++batch) {
    EXPECT_EQ(table.DecodeStepTime(batch), decode.Decode(batch).tbt_s) << batch;
  }
  // And to the callback layer built from the same models.
  ServeCallbacks callbacks = MakePerfModelCallbacks(prefill, decode, 8, 64);
  EXPECT_EQ(table.PrefillTime(3), callbacks.prefill_time(3));
  EXPECT_EQ(table.DecodeStepTime(17), callbacks.decode_step_time(17));
}

TEST(StepTimeTable, OutOfRangeBatchesClampToTheCaps) {
  StepTimeTable table({0.1, 0.2}, {0.01, 0.02, 0.03});
  EXPECT_DOUBLE_EQ(table.PrefillTime(0), 0.1);   // below 1 clamps to batch 1
  EXPECT_DOUBLE_EQ(table.PrefillTime(99), 0.2);  // above the cap clamps to it
  EXPECT_DOUBLE_EQ(table.DecodeStepTime(2), 0.02);
  EXPECT_DOUBLE_EQ(table.DecodeStepTime(1000), 0.03);
  EXPECT_TRUE(StepTimeTable().empty());
}

TEST(PerfModel, PoolCapacityDerivesFromTheModels) {
  TransformerSpec model = Llama3_70B();
  GpuSpec gpu = H100();
  WorkloadParams workload;
  PerfModel prefill(model, gpu, MakeTpPlan(model, 2).value(), workload);
  PerfModel decode(model, gpu, MakeTpPlan(model, 4).value(), workload);
  InstanceCapacity capacity = CapacityFromPerfModels(prefill, 8, decode, 128);
  EXPECT_EQ(capacity.prefill_gpus, 2);
  EXPECT_EQ(capacity.decode_gpus, 4);
  EXPECT_EQ(capacity.prefill_tokens_per_s, prefill.Prefill(8).tokens_per_s);
  EXPECT_EQ(capacity.decode_tokens_per_s, decode.Decode(128).tokens_per_s);
}

}  // namespace
}  // namespace litegpu
