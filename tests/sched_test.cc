#include <gtest/gtest.h>

#include "src/hw/catalog.h"
#include "src/sched/allocator.h"
#include "src/sched/pools.h"
#include "src/sched/power_sched.h"
#include "src/util/rng.h"

namespace litegpu {
namespace {

// --- allocator ---

TEST(Allocator, GrantsAndReleases) {
  ClusterAllocator alloc(8, 1.0);
  Allocation a = alloc.Allocate({1, 2.0});
  EXPECT_TRUE(a.satisfied);
  EXPECT_EQ(a.units, 2);
  EXPECT_EQ(alloc.used_units(), 2);
  alloc.Release(a);
  EXPECT_EQ(alloc.used_units(), 0);
}

TEST(Allocator, RejectsWhenFull) {
  ClusterAllocator alloc(4, 1.0);
  EXPECT_TRUE(alloc.Allocate({1, 3.0}).satisfied);
  EXPECT_FALSE(alloc.Allocate({2, 2.0}).satisfied);
  EXPECT_TRUE(alloc.Allocate({3, 1.0}).satisfied);
}

TEST(Allocator, FractionalDemandRoundsUpToQuantum) {
  ClusterAllocator coarse(8, 1.0);
  Allocation a = coarse.Allocate({1, 0.3});
  EXPECT_EQ(a.units, 1);  // 0.3 H100 -> 1 whole H100
  ClusterAllocator fine(32, 0.25);
  Allocation b = fine.Allocate({1, 0.3});
  EXPECT_EQ(b.units, 2);  // 0.3 H100 -> 2 quarter-GPUs (0.5)
  EXPECT_GT(fine.AllocationEfficiency(), coarse.AllocationEfficiency());
}

TEST(Allocator, EfficiencyOneForExactMultiples) {
  ClusterAllocator alloc(8, 1.0);
  alloc.Allocate({1, 3.0});
  alloc.Allocate({2, 2.0});
  EXPECT_DOUBLE_EQ(alloc.AllocationEfficiency(), 1.0);
}

TEST(Allocator, UtilizationTracksGrants) {
  ClusterAllocator alloc(10, 1.0);
  alloc.Allocate({1, 4.0});
  EXPECT_DOUBLE_EQ(alloc.Utilization(), 0.4);
}

TEST(Allocator, FineGranularityPacksMoreJobs) {
  // Random fractional jobs; the Lite-granularity cluster of equal capacity
  // must pack at least as many and waste less.
  Rng rng(99);
  std::vector<AllocationRequest> requests;
  for (int i = 0; i < 64; ++i) {
    requests.push_back({i, rng.Uniform(0.2, 2.5)});
  }
  GranularityComparison cmp = CompareGranularity(requests, 16, 4);
  EXPECT_GE(cmp.fine_jobs_packed, cmp.coarse_jobs_packed);
  EXPECT_GE(cmp.fine_efficiency, cmp.coarse_efficiency);
  EXPECT_GT(cmp.fine_efficiency, 0.85);
}

// --- power scheduling ---

TEST(PowerSched, TraceShape) {
  auto trace = DiurnalLoadTrace(24);
  ASSERT_EQ(trace.size(), 24u);
  double lo = 1.0;
  double hi = 0.0;
  for (double l : trace) {
    lo = std::min(lo, l);
    hi = std::max(hi, l);
    EXPECT_GE(l, 0.15);
    EXPECT_LE(l, 1.0);
  }
  EXPECT_LT(lo, 0.3);   // overnight trough
  EXPECT_GT(hi, 0.9);   // daytime peak
}

TEST(PowerSched, AllPoliciesServeTheLoad) {
  auto trace = DiurnalLoadTrace(96);
  DvfsModel dvfs;
  dvfs.nominal_power_watts = Lite().tdp_watts;
  for (PowerPolicy policy :
       {PowerPolicy::kAllDvfs, PowerPolicy::kPowerOffIdle, PowerPolicy::kHybrid}) {
    PowerScheduleResult r = RunPowerSchedule(Lite(), 32, trace, policy, dvfs);
    EXPECT_GT(r.service_level, 0.999) << ToString(policy);
    EXPECT_GT(r.average_power_watts, 0.0);
    EXPECT_GE(r.peak_power_watts, r.average_power_watts);
  }
}

TEST(PowerSched, HybridNeverWorseThanPureDvfsAtLowLoad) {
  std::vector<double> low_trace(24, 0.2);
  DvfsModel dvfs;
  dvfs.nominal_power_watts = Lite().tdp_watts;
  PowerScheduleResult dvfs_only =
      RunPowerSchedule(Lite(), 32, low_trace, PowerPolicy::kAllDvfs, dvfs);
  PowerScheduleResult hybrid =
      RunPowerSchedule(Lite(), 32, low_trace, PowerPolicy::kHybrid, dvfs);
  EXPECT_LE(hybrid.average_power_watts, dvfs_only.average_power_watts);
  EXPECT_GT(hybrid.service_level, 0.999);
}

TEST(PowerSched, FinerQuantumSavesEnergyAtLowLoad) {
  // Paper Section 3: down-clocking/powering at Lite granularity beats doing
  // it in whole-H100 steps. Equal fleet capacity, equal min-active share.
  std::vector<double> low_trace(24, 0.17);
  DvfsModel h100_dvfs;
  h100_dvfs.nominal_power_watts = H100().tdp_watts;
  DvfsModel lite_dvfs;
  lite_dvfs.nominal_power_watts = H100().tdp_watts / 4.0;  // isolate granularity
  PowerScheduleResult coarse =
      RunPowerSchedule(H100(), 8, low_trace, PowerPolicy::kPowerOffIdle, h100_dvfs, 0.125);
  PowerScheduleResult fine =
      RunPowerSchedule(Lite(), 32, low_trace, PowerPolicy::kPowerOffIdle, lite_dvfs, 0.125);
  EXPECT_LT(fine.average_power_watts, coarse.average_power_watts);
  EXPECT_GT(fine.service_level, 0.999);
}

TEST(PowerSched, PeakServingTradeoff) {
  DvfsModel dvfs;
  dvfs.nominal_power_watts = Lite().tdp_watts;
  // Small peak: overclocking beats paying static power on extra devices
  // when the extras carry networking overhead.
  PeakServingComparison small = ComparePeakServing(Lite(), 32, 1.05, dvfs, 25.0);
  EXPECT_TRUE(small.overclock_feasible);
  EXPECT_LT(small.overclock_power_watts, small.extra_devices_power_watts);
  // Beyond the DVFS ceiling, overclocking is not an option at all.
  PeakServingComparison big = ComparePeakServing(Lite(), 32, 1.5, dvfs, 25.0);
  EXPECT_FALSE(big.overclock_feasible);
  EXPECT_GT(big.extra_devices_power_watts, 0.0);
}

// --- pools ---

TEST(Pools, SizesMeetDemandWithHeadroom) {
  PoolDemand demand;
  demand.requests_per_s = 20.0;
  InstanceCapacity capacity;
  capacity.prefill_tokens_per_s = 28000.0;
  capacity.decode_tokens_per_s = 24000.0;
  capacity.prefill_gpus = 2;
  capacity.decode_gpus = 4;
  PoolPlan plan = SizePools(demand, capacity);
  EXPECT_GE(plan.prefill_instances * capacity.prefill_tokens_per_s,
            demand.requests_per_s * demand.prompt_tokens * demand.provisioning_headroom);
  EXPECT_GE(plan.decode_instances * capacity.decode_tokens_per_s,
            demand.requests_per_s * demand.output_tokens * demand.provisioning_headroom);
  EXPECT_EQ(plan.total_gpus, plan.prefill_gpus + plan.decode_gpus);
  EXPECT_GE(plan.prefill_overprovision, demand.provisioning_headroom - 1e-9);
}

TEST(Pools, SmallerInstancesReduceOverprovision) {
  PoolDemand demand;
  demand.requests_per_s = 3.0;
  InstanceCapacity big;  // H100-sized instances
  big.prefill_tokens_per_s = 28000.0;
  big.decode_tokens_per_s = 24000.0;
  big.prefill_gpus = 2;
  big.decode_gpus = 4;
  InstanceCapacity quarter = big;  // Lite-sized instances: 1/4 the quantum
  quarter.prefill_tokens_per_s /= 4.0;
  quarter.decode_tokens_per_s /= 4.0;
  PoolPlan coarse = SizePools(demand, big);
  PoolPlan fine = SizePools(demand, quarter);
  EXPECT_LE(fine.prefill_overprovision, coarse.prefill_overprovision + 1e-9);
  EXPECT_LE(fine.decode_overprovision, coarse.decode_overprovision + 1e-9);
}

TEST(Pools, InvalidCapacityGivesEmptyPlan) {
  PoolDemand demand;
  InstanceCapacity capacity;  // zero throughput
  PoolPlan plan = SizePools(demand, capacity);
  EXPECT_EQ(plan.total_gpus, 0);
}

}  // namespace
}  // namespace litegpu
