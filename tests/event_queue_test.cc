// CalendarEventQueue correctness: the calendar/bucket queue must pop in
// exactly the fully-specified (time, kind, instance) order of the
// reference binary heap, for any bucket width and window size — including
// colliding timestamps, full-key duplicates, pushes into already-skimmed
// buckets, overflow re-bucketing, and window rotation. The simulator's
// only scheduling contract is "never push earlier than the last pop", so
// the randomized driver respects exactly that and nothing else.

#include "src/serve/event_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace litegpu {
namespace {

// Deterministic generator (same construction the workload module uses) so
// the "randomized" property test replays identically on every platform.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

ServeEvent MakeEvent(double time_s, int kind, int instance) {
  ServeEvent e;
  e.time_s = time_s;
  e.kind = static_cast<ServeEventKind>(kind);
  e.instance = instance;
  // The epoch is not part of the ordering, so two full-key duplicates with
  // different epochs may legally pop in either order. Deriving the epoch
  // from the key keeps the expected pop sequence fully determined.
  e.epoch = kind * 31 + instance;
  return e;
}

void ExpectSameEvent(const ServeEvent& a, const ServeEvent& b, size_t pop_index) {
  EXPECT_EQ(a.time_s, b.time_s) << "pop " << pop_index;
  EXPECT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind)) << "pop " << pop_index;
  EXPECT_EQ(a.instance, b.instance) << "pop " << pop_index;
  EXPECT_EQ(a.epoch, b.epoch) << "pop " << pop_index;
}

// Drives a CalendarEventQueue and the reference HeapEventQueue through an
// identical interleaved push/pop schedule and asserts every peek and pop
// agrees. Pushes are monotone with respect to the last pop (the
// simulator's contract) but may land anywhere at or after it — including
// in the current bucket, past the window, or exactly on its edge.
void RunInterleavedTrial(uint64_t seed, double bucket_width, size_t buckets,
                         double max_delay_s, int ops) {
  CalendarEventQueue calendar(bucket_width, buckets);
  HeapEventQueue heap;
  uint64_t rng = seed;
  double last_pop_s = 0.0;
  size_t pops = 0;
  for (int op = 0; op < ops; ++op) {
    bool push = heap.empty() || (SplitMix64(rng) % 100) < 60;
    if (push) {
      // Quantize delays onto a coarse lattice so distinct pushes collide in
      // time (and sometimes on the full key) with high probability.
      double delay = static_cast<double>(SplitMix64(rng) % 17) * (max_delay_s / 16.0);
      ServeEvent e = MakeEvent(last_pop_s + delay,
                               static_cast<int>(SplitMix64(rng) % 11),
                               static_cast<int>(SplitMix64(rng) % 4));
      calendar.Push(e);
      heap.Push(e);
    } else {
      ASSERT_EQ(calendar.size(), heap.size());
      EXPECT_EQ(calendar.PeekTime(), heap.PeekTime());
      ServeEvent a = calendar.Pop();
      ServeEvent b = heap.Pop();
      ExpectSameEvent(a, b, pops++);
      last_pop_s = b.time_s;
    }
  }
  // Drain both completely: the tail orderings must agree too.
  while (!heap.empty()) {
    ASSERT_FALSE(calendar.empty());
    EXPECT_EQ(calendar.PeekTime(), heap.PeekTime());
    ExpectSameEvent(calendar.Pop(), heap.Pop(), pops++);
  }
  EXPECT_TRUE(calendar.empty());
  EXPECT_EQ(calendar.size(), 0u);
}

TEST(CalendarEventQueue, MatchesHeapOnCollidingBatches) {
  // Many events per bucket: delays up to 4 widths, so most pushes collide
  // inside the window and ties on (time, kind, instance) are common.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RunInterleavedTrial(seed, /*bucket_width=*/1e-3, /*buckets=*/64,
                        /*max_delay_s=*/4e-3, /*ops=*/4000);
  }
}

TEST(CalendarEventQueue, MatchesHeapWhenMostPushesOverflowTheWindow) {
  // Delays span many windows: pushes overflow constantly and every drain
  // rotates the window over the overflow heap.
  for (uint64_t seed = 100; seed <= 104; ++seed) {
    RunInterleavedTrial(seed, /*bucket_width=*/1e-3, /*buckets=*/4,
                        /*max_delay_s=*/1.0, /*ops=*/3000);
  }
}

TEST(CalendarEventQueue, MatchesHeapWithOneGiantBucket) {
  // Degenerate calendar: a width wider than every delay turns the queue
  // into a single unsorted bucket — pure comparator-scan territory.
  RunInterleavedTrial(7, /*bucket_width=*/100.0, /*buckets=*/2,
                      /*max_delay_s=*/1.0, /*ops=*/3000);
}

TEST(CalendarEventQueue, FullKeyDuplicatesAllComeBack) {
  // N copies of the same (time, kind, instance) must pop N times, in a
  // contiguous run, from both queues.
  CalendarEventQueue calendar(1e-3, 16);
  HeapEventQueue heap;
  for (int copy = 0; copy < 5; ++copy) {
    for (int k : {3, 2, 10}) {
      ServeEvent e = MakeEvent(0.5, k, 1);
      calendar.Push(e);
      heap.Push(e);
    }
  }
  ServeEvent before = MakeEvent(0.25, 0, 0);
  ServeEvent after = MakeEvent(0.75, 0, 0);
  calendar.Push(before);
  heap.Push(before);
  calendar.Push(after);
  heap.Push(after);
  size_t pops = 0;
  while (!heap.empty()) {
    ExpectSameEvent(calendar.Pop(), heap.Pop(), pops++);
  }
  EXPECT_EQ(pops, 17u);
}

TEST(CalendarEventQueue, ArrivalIntoSkimmedBucketIsNotLost) {
  // PeekTime skims the cursor forward over empty buckets without popping.
  // The simulator then processes an *arrival* earlier than the peeked
  // event and schedules work into a bucket the cursor already passed —
  // the push must walk the cursor back so nothing is skipped.
  CalendarEventQueue q(1.0, 8);
  q.Push(MakeEvent(5.5, 2, 0));
  EXPECT_EQ(q.PeekTime(), 5.5);  // cursor now sits at bucket 5
  q.Push(MakeEvent(3.2, 2, 2));  // arrival-scheduled work behind the cursor
  q.Push(MakeEvent(5.5, 3, 1));
  EXPECT_EQ(q.Pop().instance, 2);
  EXPECT_EQ(q.Pop().instance, 0);  // kind 2 beats kind 3 at equal time
  EXPECT_EQ(q.Pop().instance, 1);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarEventQueue, WindowRotationReanchorsToTheOverflowMinimum) {
  // Everything beyond the window overflows; draining the window must
  // rotate it so far-future events re-bucket and pop in order.
  CalendarEventQueue q(1e-3, 4);  // window spans 4 ms
  q.Push(MakeEvent(0.001, 2, 0));
  q.Push(MakeEvent(10.0, 2, 1));     // far past the window
  q.Push(MakeEvent(10.0005, 3, 2));  // lands in the rotated window with #1
  q.Push(MakeEvent(25.0, 2, 3));     // still overflow after one rotation
  EXPECT_EQ(q.Pop().instance, 0);
  EXPECT_EQ(q.Pop().instance, 1);
  q.Push(MakeEvent(10.001, 2, 4));  // push into the rotated window
  EXPECT_EQ(q.Pop().instance, 2);
  EXPECT_EQ(q.Pop().instance, 4);
  EXPECT_EQ(q.Pop().instance, 3);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarEventQueue, ResetReusesTheQueueForANewRun) {
  CalendarEventQueue q(1e-3, 32);
  for (int trial = 0; trial < 3; ++trial) {
    HeapEventQueue heap;
    uint64_t rng = 42 + static_cast<uint64_t>(trial);
    for (int i = 0; i < 500; ++i) {
      ServeEvent e = MakeEvent(static_cast<double>(SplitMix64(rng) % 1000) * 1e-4,
                               static_cast<int>(SplitMix64(rng) % 11),
                               static_cast<int>(SplitMix64(rng) % 4));
      q.Push(e);
      heap.Push(e);
    }
    size_t pops = 0;
    while (!heap.empty()) {
      ExpectSameEvent(q.Pop(), heap.Pop(), pops++);
    }
    EXPECT_TRUE(q.empty());
    // Re-arm with a different width; correctness must not depend on it.
    q.Reset(trial == 0 ? 0.05 : 2e-4);
  }
}

TEST(CalendarEventQueue, PeekThenPopReturnsThePeekedEvent) {
  CalendarEventQueue q(1e-3, 16);
  q.Push(MakeEvent(0.002, 5, 1));
  q.Push(MakeEvent(0.002, 2, 0));
  EXPECT_EQ(q.PeekTime(), 0.002);
  // A push that beats the cached minimum must displace it...
  q.Push(MakeEvent(0.0005, 9, 3));
  ServeEvent e = q.Pop();
  EXPECT_EQ(e.instance, 3);
  // ...and one that loses must not.
  EXPECT_EQ(q.PeekTime(), 0.002);
  q.Push(MakeEvent(0.009, 2, 2));
  EXPECT_EQ(static_cast<int>(q.Pop().kind), 2);
  EXPECT_EQ(static_cast<int>(q.Pop().kind), 5);
  EXPECT_EQ(q.Pop().instance, 2);
}

}  // namespace
}  // namespace litegpu
