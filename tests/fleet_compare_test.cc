// Fleet-compare study: the differential-testing pass over the serving
// stack. Each candidate's simulated knee is checked against the analytic
// capacity model it was planned from, and the Pareto frontier is checked
// for the invariants the report promises: no dominated member, and the
// same set at any thread count or catalog order.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/core/runner.h"
#include "src/core/scenario.h"
#include "src/serve/knee.h"

namespace litegpu {
namespace {

FleetCandidate MakeCandidate(const std::string& name, int split,
                             double mem_bw_multiplier) {
  FleetCandidate c;
  c.name = name;
  c.gpu = "H100";
  c.split = split;
  c.mem_bw_multiplier = mem_bw_multiplier;
  return c;
}

// A small three-candidate catalog on a coarse grid — big enough to produce
// a non-trivial frontier, small enough to run in test time.
Scenario FleetScenario(uint64_t seed, int threads,
                       std::vector<FleetCandidate> candidates) {
  ScenarioBuilder builder(StudyKind::kFleetCompare);
  FleetKnobs fleet;
  fleet.candidates = std::move(candidates);
  fleet.load_lo = 0.25;
  fleet.load_hi = 1.0;
  fleet.load_step = 0.25;
  fleet.horizon_s = 15.0;
  fleet.seed = seed;
  builder.Fleet(fleet).Threads(threads);
  std::string error;
  auto scenario = builder.Build(&error);
  EXPECT_TRUE(scenario.has_value()) << error;
  return *scenario;
}

std::vector<FleetCandidate> DefaultCatalog() {
  return {MakeCandidate("H100", 1, 1.0), MakeCandidate("Lite/4", 4, 2.0),
          MakeCandidate("Lite/8", 8, 2.0)};
}

FleetCompareReport RunFleet(const Scenario& s) {
  RunReport report = Runner().Run(s);
  EXPECT_TRUE(report.ok) << report.error;
  return std::get<FleetCompareReport>(report.payload);
}

std::set<std::string> FrontierNames(const FleetCompareReport& r) {
  std::set<std::string> names;
  for (int idx : r.frontier) {
    names.insert(r.candidates[static_cast<size_t>(idx)].name);
  }
  return names;
}

// --- differential test: simulated knee vs the analytic capacity model ----

TEST(FleetCompare, KneeGoodputTracksAnalyticCapacity) {
  FleetCompareReport r = RunFleet(FleetScenario(0xC0FFEE, 1, DefaultCatalog()));
  ASSERT_EQ(r.candidates.size(), 3u);
  for (const auto& c : r.candidates) {
    ASSERT_TRUE(c.feasible) << c.name << ": " << c.error;
    // The knee ran at knee_load x the pool's analytic decode capacity; the
    // simulated goodput must track that offered rate. The tolerance covers
    // finite-horizon edge effects, not model disagreement.
    double offered = c.analytic_capacity_tok_s * c.knee_load;
    ASSERT_GT(offered, 0.0) << c.name;
    double agreement = c.knee_goodput_tokens_per_s / offered;
    EXPECT_GT(agreement, 0.75) << c.name;
    EXPECT_LT(agreement, 1.15) << c.name;
  }
}

// --- frontier invariants -------------------------------------------------

TEST(FleetCompare, DominatedCandidateNeverOnFrontier) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    FleetCompareReport r = RunFleet(FleetScenario(seed, 1, DefaultCatalog()));
    // Recompute dominance from the reported metrics: a frontier member must
    // not be dominated, and every feasible non-member must be.
    for (size_t i = 0; i < r.candidates.size(); ++i) {
      const auto& a = r.candidates[i];
      if (!a.feasible) {
        EXPECT_FALSE(a.on_frontier) << a.name;
        continue;
      }
      bool dominated = false;
      for (size_t j = 0; j < r.candidates.size() && !dominated; ++j) {
        const auto& b = r.candidates[j];
        if (i == j || !b.feasible) {
          continue;
        }
        bool no_worse = b.usd_per_mtoken <= a.usd_per_mtoken &&
                        b.joules_per_token <= a.joules_per_token &&
                        b.knee_goodput_tokens_per_s >= a.knee_goodput_tokens_per_s;
        bool strictly = b.usd_per_mtoken < a.usd_per_mtoken ||
                        b.joules_per_token < a.joules_per_token ||
                        b.knee_goodput_tokens_per_s > a.knee_goodput_tokens_per_s;
        dominated = no_worse && strictly;
      }
      EXPECT_EQ(a.on_frontier, !dominated) << a.name << " seed " << seed;
    }
    EXPECT_FALSE(r.frontier.empty()) << "seed " << seed;
  }
}

TEST(FleetCompare, ParetoSetInvariantToThreadCount) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    FleetCompareReport serial = RunFleet(FleetScenario(seed, 1, DefaultCatalog()));
    FleetCompareReport parallel = RunFleet(FleetScenario(seed, 7, DefaultCatalog()));
    EXPECT_EQ(FrontierNames(serial), FrontierNames(parallel)) << "seed " << seed;
    ASSERT_EQ(serial.candidates.size(), parallel.candidates.size());
    for (size_t i = 0; i < serial.candidates.size(); ++i) {
      EXPECT_EQ(serial.candidates[i].knee_goodput_tokens_per_s,
                parallel.candidates[i].knee_goodput_tokens_per_s)
          << serial.candidates[i].name << " seed " << seed;
      EXPECT_EQ(serial.candidates[i].usd_per_mtoken,
                parallel.candidates[i].usd_per_mtoken)
          << serial.candidates[i].name << " seed " << seed;
    }
  }
}

TEST(FleetCompare, ParetoSetInvariantToCatalogOrder) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    std::vector<FleetCandidate> forward = DefaultCatalog();
    std::vector<FleetCandidate> reversed(forward.rbegin(), forward.rend());
    FleetCompareReport a = RunFleet(FleetScenario(seed, 1, forward));
    FleetCompareReport b = RunFleet(FleetScenario(seed, 1, reversed));
    EXPECT_EQ(FrontierNames(a), FrontierNames(b)) << "seed " << seed;
    // The winner is a name, not an index — indices shift with the order.
    ASSERT_GE(a.winner_index, 0);
    ASSERT_GE(b.winner_index, 0);
    EXPECT_EQ(a.candidates[static_cast<size_t>(a.winner_index)].name,
              b.candidates[static_cast<size_t>(b.winner_index)].name)
        << "seed " << seed;
    // Per-candidate streams derive from names, so every metric matches too.
    for (const auto& ca : a.candidates) {
      auto it = std::find_if(b.candidates.begin(), b.candidates.end(),
                             [&](const auto& cb) { return cb.name == ca.name; });
      ASSERT_NE(it, b.candidates.end()) << ca.name;
      EXPECT_EQ(ca.seed, it->seed) << ca.name;
      EXPECT_EQ(ca.knee_goodput_tokens_per_s, it->knee_goodput_tokens_per_s)
          << ca.name << " seed " << seed;
      EXPECT_EQ(ca.usd_per_mtoken, it->usd_per_mtoken) << ca.name << " seed " << seed;
    }
  }
}

// --- degenerate catalogs -------------------------------------------------

TEST(FleetCompare, ImpossibleSloMakesEveryCandidateInfeasible) {
  Scenario s = FleetScenario(0xC0FFEE, 1, DefaultCatalog());
  s.workload.tbt_slo_s = 1e-9;  // no config can meet a nanosecond TBT
  FleetCompareReport r = RunFleet(s);
  for (const auto& c : r.candidates) {
    EXPECT_FALSE(c.feasible) << c.name;
    EXPECT_FALSE(c.error.empty()) << c.name;
    EXPECT_FALSE(c.on_frontier) << c.name;
  }
  EXPECT_TRUE(r.frontier.empty());
  EXPECT_EQ(r.winner_index, -1);
}

TEST(FleetCompare, CandidatesSharingAPartShareOnePlatformBuild) {
  std::vector<FleetCandidate> catalog = {
      MakeCandidate("pool-a", 4, 2.0), MakeCandidate("pool-b", 4, 2.0),
      MakeCandidate("baseline", 1, 1.0)};
  catalog[1].decode_instances = 2;  // same part, different pool shape
  FleetCompareReport r = RunFleet(FleetScenario(0xC0FFEE, 1, catalog));
  // Two candidates resolve to the same derived part: one search + one
  // step-time table serves both.
  EXPECT_EQ(r.platform_builds, 2);
  ASSERT_TRUE(r.candidates[0].feasible);
  ASSERT_TRUE(r.candidates[1].feasible);
  EXPECT_EQ(r.candidates[0].gpu, r.candidates[1].gpu);
  // The two-instance pool's knee offered twice the rate.
  EXPECT_GT(r.candidates[1].analytic_capacity_tok_s,
            1.9 * r.candidates[0].analytic_capacity_tok_s);
}

// --- knee selection helper ----------------------------------------------

KneePoint MakeKneePoint(double rate, double load, bool slo_ok, double goodput) {
  KneePoint p;
  p.arrival_rate_per_s = rate;
  p.load = load;
  p.slo_ok = slo_ok;
  p.goodput_tokens_per_s = goodput;
  return p;
}

TEST(KneeSelection, HighestQualifyingRateWins) {
  std::vector<KneePoint> grid = {MakeKneePoint(10.0, 0.25, true, 100.0),
                                 MakeKneePoint(20.0, 0.50, true, 200.0),
                                 MakeKneePoint(30.0, 0.75, false, 300.0)};
  KneeSelection s = SelectKneeAndCheapest(grid, /*autoscaled=*/false);
  EXPECT_EQ(s.knee_index, 1);
  EXPECT_DOUBLE_EQ(s.knee_load, 0.50);
  EXPECT_DOUBLE_EQ(s.knee_goodput_tokens_per_s, 200.0);
}

TEST(KneeSelection, RateTieGoesToLowestLoad) {
  // Two grid points meet the SLOs at the same offered rate (an autoscaled
  // sweep can produce this): the knee is the one using less headroom.
  std::vector<KneePoint> grid = {MakeKneePoint(10.0, 0.80, true, 100.0),
                                 MakeKneePoint(10.0, 0.40, true, 100.0),
                                 MakeKneePoint(5.0, 0.20, true, 50.0)};
  KneeSelection s = SelectKneeAndCheapest(grid, /*autoscaled=*/false);
  EXPECT_EQ(s.knee_index, 1);
  EXPECT_DOUBLE_EQ(s.knee_load, 0.40);
}

TEST(KneeSelection, FullTieKeepsEarliestPoint) {
  std::vector<KneePoint> grid = {MakeKneePoint(10.0, 0.50, true, 100.0),
                                 MakeKneePoint(10.0, 0.50, true, 120.0)};
  KneeSelection s = SelectKneeAndCheapest(grid, /*autoscaled=*/false);
  EXPECT_EQ(s.knee_index, 0);
  EXPECT_DOUBLE_EQ(s.knee_goodput_tokens_per_s, 100.0);
}

TEST(KneeSelection, NoQualifyingPointReportsNoKnee) {
  std::vector<KneePoint> grid = {MakeKneePoint(10.0, 0.50, false, 100.0)};
  KneeSelection s = SelectKneeAndCheapest(grid, /*autoscaled=*/false);
  EXPECT_EQ(s.knee_index, -1);
  EXPECT_EQ(s.cheapest_index, -1);
}

TEST(KneeSelection, CheapestOnlyConsideredWhenAutoscaled) {
  std::vector<KneePoint> grid = {MakeKneePoint(10.0, 0.50, true, 100.0),
                                 MakeKneePoint(20.0, 1.00, true, 200.0)};
  grid[0].makespan_s = 60.0;
  grid[0].gpu_hours = 1.0;  // 6000 tok/GPU-hour
  grid[1].makespan_s = 60.0;
  grid[1].gpu_hours = 4.0;  // 3000 tok/GPU-hour
  KneeSelection fixed = SelectKneeAndCheapest(grid, /*autoscaled=*/false);
  EXPECT_EQ(fixed.cheapest_index, -1);
  KneeSelection scaled = SelectKneeAndCheapest(grid, /*autoscaled=*/true);
  EXPECT_EQ(scaled.cheapest_index, 0);
  EXPECT_DOUBLE_EQ(scaled.cheapest_tokens_per_gpu_hour, 6000.0);
}

}  // namespace
}  // namespace litegpu
