#include <gtest/gtest.h>

#include <cmath>

#include "src/serve/simulator.h"
#include "src/serve/simulator_reference.h"
#include "src/serve/workload.h"

namespace litegpu {
namespace {

// --- workload generation ---

TEST(Workload, PoissonArrivalRate) {
  WorkloadSpec spec;
  spec.arrival_rate_per_s = 50.0;
  spec.duration_s = 200.0;
  auto requests = GenerateWorkload(spec);
  EXPECT_NEAR(static_cast<double>(requests.size()), 10000.0, 300.0);
  for (size_t i = 1; i < requests.size(); ++i) {
    EXPECT_GE(requests[i].arrival_s, requests[i - 1].arrival_s);
  }
}

TEST(Workload, ConstantLengthsWhenSigmaZero) {
  WorkloadSpec spec;
  spec.duration_s = 10.0;
  auto requests = GenerateWorkload(spec);
  for (const auto& r : requests) {
    EXPECT_EQ(r.prompt_tokens, spec.median_prompt_tokens);
    EXPECT_EQ(r.output_tokens, spec.median_output_tokens);
  }
}

TEST(Workload, LognormalMedianRoughlyPreserved) {
  WorkloadSpec spec;
  spec.arrival_rate_per_s = 100.0;
  spec.duration_s = 100.0;
  spec.prompt_sigma = 0.8;
  auto requests = GenerateWorkload(spec);
  std::vector<int> prompts;
  for (const auto& r : requests) {
    prompts.push_back(r.prompt_tokens);
  }
  std::sort(prompts.begin(), prompts.end());
  double median = prompts[prompts.size() / 2];
  EXPECT_NEAR(median, 1500.0, 150.0);
}

TEST(Workload, Deterministic) {
  WorkloadSpec spec;
  spec.duration_s = 50.0;
  auto a = GenerateWorkload(spec);
  auto b = GenerateWorkload(spec);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
  }
}

TEST(Workload, TokenTotals) {
  WorkloadSpec spec;
  spec.duration_s = 20.0;
  auto requests = GenerateWorkload(spec);
  EXPECT_DOUBLE_EQ(TotalPromptTokens(requests),
                   1500.0 * static_cast<double>(requests.size()));
  EXPECT_DOUBLE_EQ(TotalOutputTokens(requests),
                   256.0 * static_cast<double>(requests.size()));
}

// --- multi-class workload generation ---

ClassWorkload MakeClass(double rate, int prompt = 1500, int output = 256,
                        double prompt_sigma = 0.0, double output_sigma = 0.0) {
  ClassWorkload cls;
  cls.arrival_rate_per_s = rate;
  cls.median_prompt_tokens = prompt;
  cls.prompt_sigma = prompt_sigma;
  cls.median_output_tokens = output;
  cls.output_sigma = output_sigma;
  return cls;
}

TEST(MultiClassWorkload, SingleClassBitIdenticalToLegacyGenerator) {
  // A one-class mix must reproduce GenerateWorkload exactly: class 0
  // inherits the base seed and the per-request sampling order is the same.
  WorkloadSpec legacy;
  legacy.arrival_rate_per_s = 25.0;
  legacy.duration_s = 40.0;
  legacy.prompt_sigma = 0.6;
  legacy.output_sigma = 0.3;
  legacy.seed = 0xABCDEF;
  auto expected = GenerateWorkload(legacy);

  MultiClassWorkloadSpec multi;
  multi.duration_s = legacy.duration_s;
  multi.seed = legacy.seed;
  multi.classes.push_back(MakeClass(legacy.arrival_rate_per_s, legacy.median_prompt_tokens,
                                    legacy.median_output_tokens, legacy.prompt_sigma,
                                    legacy.output_sigma));
  auto actual = GenerateMultiClassWorkload(multi);

  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id);
    EXPECT_EQ(actual[i].class_id, 0);
    EXPECT_DOUBLE_EQ(actual[i].arrival_s, expected[i].arrival_s);
    EXPECT_EQ(actual[i].prompt_tokens, expected[i].prompt_tokens);
    EXPECT_EQ(actual[i].output_tokens, expected[i].output_tokens);
  }
}

TEST(MultiClassWorkload, AppendingAClassNeverPerturbsExistingClasses) {
  // Every class has its own SplitMix64 substream, so adding class B (or C)
  // leaves class A's arrivals and lengths bit-identical at a fixed seed.
  MultiClassWorkloadSpec two;
  two.duration_s = 60.0;
  two.seed = 0x5EED;
  two.classes.push_back(MakeClass(20.0, 1500, 256, 0.5, 0.5));
  two.classes.push_back(MakeClass(5.0, 6000, 900));

  MultiClassWorkloadSpec three = two;
  three.classes.push_back(MakeClass(9.0, 300, 64, 0.2, 0.2));

  auto a = GenerateMultiClassWorkload(two);
  auto b = GenerateMultiClassWorkload(three);
  for (int cls = 0; cls < 2; ++cls) {
    std::vector<Request> from_two, from_three;
    for (const auto& r : a) {
      if (r.class_id == cls) from_two.push_back(r);
    }
    for (const auto& r : b) {
      if (r.class_id == cls) from_three.push_back(r);
    }
    ASSERT_EQ(from_two.size(), from_three.size()) << "class " << cls;
    EXPECT_GT(from_two.size(), 0u) << "class " << cls;
    for (size_t i = 0; i < from_two.size(); ++i) {
      EXPECT_DOUBLE_EQ(from_two[i].arrival_s, from_three[i].arrival_s);
      EXPECT_EQ(from_two[i].prompt_tokens, from_three[i].prompt_tokens);
      EXPECT_EQ(from_two[i].output_tokens, from_three[i].output_tokens);
    }
  }
}

TEST(MultiClassWorkload, MergedTraceIsArrivalSortedWithSequentialIds) {
  MultiClassWorkloadSpec spec;
  spec.duration_s = 30.0;
  spec.classes.push_back(MakeClass(15.0));
  spec.classes.push_back(MakeClass(10.0, 4000, 800));
  auto requests = GenerateMultiClassWorkload(spec);
  ASSERT_GT(requests.size(), 0u);
  bool saw[2] = {false, false};
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(requests[i].id, static_cast<int>(i));
    ASSERT_GE(requests[i].class_id, 0);
    ASSERT_LT(requests[i].class_id, 2);
    saw[requests[i].class_id] = true;
    if (i > 0) {
      EXPECT_GE(requests[i].arrival_s, requests[i - 1].arrival_s);
    }
  }
  EXPECT_TRUE(saw[0]);
  EXPECT_TRUE(saw[1]);
}

TEST(MultiClassWorkload, ClassSubstreamSeedsAreStableByIndex) {
  EXPECT_EQ(ClassSubstreamSeed(42, 0), 42u);  // class 0 inherits the seed
  EXPECT_NE(ClassSubstreamSeed(42, 1), ClassSubstreamSeed(42, 2));
  // Index i's seed does not depend on how many classes follow it.
  EXPECT_EQ(ClassSubstreamSeed(42, 1), ClassSubstreamSeed(42, 1));
}

// --- simulator ---

ServeCallbacks SimpleCallbacks(double prefill_s = 0.1, double per_seq_step_s = 1e-4,
                               double base_step_s = 5e-3) {
  ServeCallbacks cb;
  cb.prefill_time = [prefill_s](int batch) { return prefill_s * std::sqrt(batch); };
  cb.decode_step_time = [per_seq_step_s, base_step_s](int batch) {
    return base_step_s + per_seq_step_s * batch;
  };
  cb.max_prefill_batch = 8;
  cb.max_decode_batch = 64;
  return cb;
}

std::vector<Request> FixedRequests(int n, double spacing_s, int output_tokens = 32) {
  std::vector<Request> requests;
  for (int i = 0; i < n; ++i) {
    Request r;
    r.id = i;
    r.arrival_s = i * spacing_s;
    r.prompt_tokens = 1500;
    r.output_tokens = output_tokens;
    requests.push_back(r);
  }
  return requests;
}

TEST(Simulator, ConservationAllRequestsComplete) {
  auto requests = FixedRequests(100, 0.05);
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 1;
  ServeMetrics m = RunServeSimulation(requests, config, SimpleCallbacks());
  EXPECT_EQ(m.admitted_requests, 100);
  EXPECT_EQ(m.completed_requests, 100);
  EXPECT_DOUBLE_EQ(m.output_tokens, 100.0 * 32.0);
}

TEST(Simulator, TtftIncludesQueueingAndPrefill) {
  // One prefill instance, all arrive at t=0: later batches wait.
  auto requests = FixedRequests(16, 0.0);
  ServeClusterConfig config;
  config.prefill_instances = 1;
  config.decode_instances = 1;
  ServeCallbacks cb = SimpleCallbacks(0.1);
  cb.max_prefill_batch = 8;
  ServeMetrics m = RunServeSimulation(requests, config, cb);
  // Work-conserving: the first arrival prefills alone (0.1 s); the rest
  // queue behind it and batch up, paying queueing delay on top.
  EXPECT_NEAR(m.ttft_s.min(), 0.1, 1e-6);
  EXPECT_GT(m.ttft_s.max(), 0.3);
}

TEST(Simulator, ThroughputMatchesStepModel) {
  // Saturated decode at max batch 64: step = 5ms + 64*0.1ms = 11.4ms ->
  // 64/0.0114 ~ 5614 tokens/s. A long run amortizes ramp-up/drain.
  auto requests = FixedRequests(2000, 0.001, 64);
  ServeClusterConfig config;
  config.prefill_instances = 8;
  config.decode_instances = 1;
  ServeMetrics m = RunServeSimulation(requests, config, SimpleCallbacks());
  EXPECT_GT(m.mean_decode_batch, 55.0);
  EXPECT_NEAR(m.decode_tokens_per_s, 64.0 / 0.0114, 300.0);
}

TEST(Simulator, MoreDecodeInstancesFinishFaster) {
  auto requests = FixedRequests(256, 0.0, 64);
  ServeClusterConfig one;
  one.prefill_instances = 4;
  one.decode_instances = 1;
  ServeClusterConfig two = one;
  two.decode_instances = 2;
  ServeMetrics a = RunServeSimulation(requests, one, SimpleCallbacks());
  ServeMetrics b = RunServeSimulation(requests, two, SimpleCallbacks());
  EXPECT_EQ(a.completed_requests, 256);
  EXPECT_EQ(b.completed_requests, 256);
  EXPECT_LT(b.makespan_s, a.makespan_s);
}

TEST(Simulator, TbtSamplesMatchCallback) {
  // A single request decodes alone: every step is base + 1 * per_seq, and
  // there are exactly output_tokens steps.
  auto requests = FixedRequests(1, 0.0, 16);
  ServeClusterConfig config;
  config.prefill_instances = 1;
  config.decode_instances = 1;
  ServeCallbacks cb = SimpleCallbacks();
  ServeMetrics m = RunServeSimulation(requests, config, cb);
  EXPECT_EQ(m.tbt_s.count(), 16u);
  EXPECT_NEAR(m.tbt_s.max(), 0.0051, 1e-12);
  EXPECT_NEAR(m.tbt_s.min(), 0.0051, 1e-12);
}

TEST(Simulator, HorizonStopsAdmission) {
  auto requests = FixedRequests(100, 0.1);
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 1;
  config.horizon_s = 4.95;  // admit ~50
  ServeMetrics m = RunServeSimulation(requests, config, SimpleCallbacks());
  EXPECT_EQ(m.admitted_requests, 50);
  EXPECT_EQ(m.completed_requests, 50);
}

TEST(Simulator, InFlightAtHorizonCountsDrainedStragglers) {
  // Requests arriving just before the horizon cannot finish by it: they
  // drain (completed_requests includes them) but are counted explicitly so
  // goodput accounting is honest.
  auto requests = FixedRequests(100, 0.1, /*output_tokens=*/64);
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 1;
  config.horizon_s = 4.95;
  ServeMetrics m = RunServeSimulation(requests, config, SimpleCallbacks());
  EXPECT_EQ(m.admitted_requests, 50);
  EXPECT_EQ(m.completed_requests, 50);  // everything drains...
  EXPECT_GT(m.in_flight_at_horizon, 0);  // ...but not all of it by the horizon
  EXPECT_LE(m.in_flight_at_horizon, m.admitted_requests);
  EXPECT_GT(m.makespan_s, config.horizon_s);

  // With no horizon pressure nothing is in flight when it passes.
  ServeClusterConfig open = config;
  open.horizon_s = 1e9;
  ServeMetrics all = RunServeSimulation(requests, open, SimpleCallbacks());
  EXPECT_EQ(all.admitted_requests, 100);
  EXPECT_EQ(all.in_flight_at_horizon, 0);
}

TEST(Simulator, UtilizationBounded) {
  auto requests = FixedRequests(64, 0.05);
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  ServeMetrics m = RunServeSimulation(requests, config, SimpleCallbacks());
  EXPECT_GT(m.prefill_utilization, 0.0);
  EXPECT_LE(m.prefill_utilization, 1.0 + 1e-9);
  EXPECT_GT(m.decode_utilization, 0.0);
  EXPECT_LE(m.decode_utilization, 1.0 + 1e-9);
}

TEST(Simulator, SimultaneousEventsProcessInSpecifiedOrder) {
  // Three requests prefill in parallel (constant pass time, so all three
  // kPrefillDone events collide), then two decode instances' step
  // completions collide every step. The specified total order — prefill
  // before decode at equal times, lower instance first — means r0 and r1
  // start decoding alone, r2 waits one step and joins decode instance 0 as
  // a batch of two. That batch-2 step (and only it) lasts 0.02 s, so the
  // TBT max and step count pin the ordering; heap-internal tie order would
  // make them drift across standard libraries.
  std::vector<Request> requests;
  for (int i = 0; i < 3; ++i) {
    Request r;
    r.id = i;
    r.arrival_s = 0.0;
    r.output_tokens = i == 2 ? 1 : 4;
    requests.push_back(r);
  }
  ServeCallbacks cb;
  cb.prefill_time = [](int) { return 1.0; };
  cb.decode_step_time = [](int batch) { return 0.010 * batch; };
  cb.max_prefill_batch = 1;
  cb.max_decode_batch = 2;
  ServeClusterConfig config;
  config.prefill_instances = 3;
  config.decode_instances = 2;
  ServeMetrics m = RunServeSimulation(requests, config, cb);
  EXPECT_EQ(m.completed_requests, 3);
  EXPECT_DOUBLE_EQ(m.output_tokens, 9.0);
  EXPECT_EQ(m.tbt_s.count(), 8u);             // 4 steps per decode instance
  EXPECT_NEAR(m.tbt_s.max(), 0.020, 1e-12);   // exactly one batch-2 step
  EXPECT_NEAR(m.makespan_s, 1.05, 1e-9);
}

TEST(Simulator, TablePathBitIdenticalToCallbackPath) {
  // A synthetic StepTimeTable holding exactly the callback values must
  // drive the event loop to bit-identical metrics on both paths.
  ServeCallbacks cb = SimpleCallbacks();
  std::vector<double> prefill_s, decode_s;
  for (int b = 1; b <= cb.max_prefill_batch; ++b) {
    prefill_s.push_back(cb.prefill_time(b));
  }
  for (int b = 1; b <= cb.max_decode_batch; ++b) {
    decode_s.push_back(cb.decode_step_time(b));
  }
  StepTimeTable table(std::move(prefill_s), std::move(decode_s));

  auto requests = FixedRequests(400, 0.01, 32);
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  config.horizon_s = 3.0;
  ServeMetrics a = RunServeSimulation(requests, config, cb);
  ServeMetrics b = RunServeSimulation(requests, config, table);
  EXPECT_EQ(a.admitted_requests, b.admitted_requests);
  EXPECT_EQ(a.completed_requests, b.completed_requests);
  EXPECT_EQ(a.in_flight_at_horizon, b.in_flight_at_horizon);
  EXPECT_EQ(a.output_tokens, b.output_tokens);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.decode_tokens_per_s, b.decode_tokens_per_s);
  EXPECT_EQ(a.prefill_utilization, b.prefill_utilization);
  EXPECT_EQ(a.decode_utilization, b.decode_utilization);
  EXPECT_EQ(a.mean_decode_batch, b.mean_decode_batch);
  ASSERT_EQ(a.ttft_s.count(), b.ttft_s.count());
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(a.ttft_s.Quantile(q), b.ttft_s.Quantile(q)) << q;
    EXPECT_EQ(a.tbt_s.Quantile(q), b.tbt_s.Quantile(q)) << q;
  }
  EXPECT_EQ(a.tbt_s.count(), b.tbt_s.count());
  EXPECT_EQ(a.tbt_s.min(), b.tbt_s.min());
  EXPECT_EQ(a.tbt_s.max(), b.tbt_s.max());
}

TEST(Simulator, PerClassMetricsPartitionTheGlobalMetrics) {
  // Two classes with different output lengths interleaved on one cluster:
  // the per-class slices must add up to the global counters exactly, and
  // the global metrics must be bit-identical to a run with class tracking
  // off (tracking is observation only).
  std::vector<Request> requests;
  for (int i = 0; i < 120; ++i) {
    Request r;
    r.id = i;
    r.class_id = i % 3 == 0 ? 1 : 0;  // ~1/3 long class
    r.arrival_s = i * 0.02;
    r.prompt_tokens = 1500;
    r.output_tokens = r.class_id == 1 ? 96 : 24;
    requests.push_back(r);
  }
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  config.horizon_s = 2.0;
  config.num_classes = 2;
  ServeMetrics m = RunServeSimulation(requests, config, SimpleCallbacks());
  ASSERT_EQ(m.per_class.size(), 2u);
  int admitted = 0, completed = 0, in_flight = 0;
  double tokens = 0.0;
  size_t ttft_samples = 0;
  for (const auto& cls : m.per_class) {
    admitted += cls.admitted_requests;
    completed += cls.completed_requests;
    in_flight += cls.in_flight_at_horizon;
    tokens += cls.output_tokens;
    ttft_samples += cls.ttft_s.count();
    EXPECT_GT(cls.completed_requests, 0);
  }
  EXPECT_EQ(admitted, m.admitted_requests);
  EXPECT_EQ(completed, m.completed_requests);
  EXPECT_EQ(in_flight, m.in_flight_at_horizon);
  EXPECT_DOUBLE_EQ(tokens, m.output_tokens);
  EXPECT_EQ(ttft_samples, m.ttft_s.count());
  // Every class-1 request decodes 96 tokens, class 0 decodes 24.
  EXPECT_DOUBLE_EQ(m.per_class[1].output_tokens,
                   96.0 * m.per_class[1].completed_requests);
  EXPECT_DOUBLE_EQ(m.per_class[0].output_tokens,
                   24.0 * m.per_class[0].completed_requests);

  ServeClusterConfig untracked = config;
  untracked.num_classes = 0;
  ServeMetrics base = RunServeSimulation(requests, untracked, SimpleCallbacks());
  EXPECT_TRUE(base.per_class.empty());
  EXPECT_EQ(base.admitted_requests, m.admitted_requests);
  EXPECT_EQ(base.completed_requests, m.completed_requests);
  EXPECT_EQ(base.output_tokens, m.output_tokens);
  EXPECT_EQ(base.makespan_s, m.makespan_s);
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(base.ttft_s.Quantile(q), m.ttft_s.Quantile(q));
    EXPECT_EQ(base.tbt_s.Quantile(q), m.tbt_s.Quantile(q));
  }
}

TEST(Simulator, EmptyConfigReturnsEmptyMetrics) {
  auto requests = FixedRequests(10, 0.1);
  ServeClusterConfig config;
  config.prefill_instances = 0;
  ServeMetrics m = RunServeSimulation(requests, config, SimpleCallbacks());
  EXPECT_EQ(m.completed_requests, 0);
}

TEST(Simulator, NewCoreBitIdenticalToReferenceCore) {
  // The rebuilt core (calendar queue, SoA hot state, completion-heap
  // decode scheduling) against the preserved PR 7 implementation, on the
  // callbacks path with lognormal lengths and per-class tracking — the
  // bench gates the table path at scale; this keeps a fast in-tree check.
  WorkloadSpec spec;
  spec.arrival_rate_per_s = 30.0;
  spec.duration_s = 20.0;
  spec.median_prompt_tokens = 800;
  spec.prompt_sigma = 0.6;
  spec.median_output_tokens = 48;
  spec.output_sigma = 0.4;
  auto requests = GenerateWorkload(spec);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].class_id = static_cast<int>(i % 2);
  }
  ServeCallbacks cb = SimpleCallbacks();
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 3;
  config.horizon_s = spec.duration_s;
  config.num_classes = 2;
  ServeMetrics a = RunServeSimulation(requests, config, cb);
  ServeMetrics b = RunServeSimulationReference(requests, config, cb);
  EXPECT_EQ(a.admitted_requests, b.admitted_requests);
  EXPECT_EQ(a.completed_requests, b.completed_requests);
  EXPECT_EQ(a.in_flight_at_horizon, b.in_flight_at_horizon);
  EXPECT_EQ(a.output_tokens, b.output_tokens);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.decode_tokens_per_s, b.decode_tokens_per_s);
  EXPECT_EQ(a.prefill_utilization, b.prefill_utilization);
  EXPECT_EQ(a.decode_utilization, b.decode_utilization);
  EXPECT_EQ(a.mean_decode_batch, b.mean_decode_batch);
  ASSERT_EQ(a.ttft_s.count(), b.ttft_s.count());
  EXPECT_EQ(a.tbt_s.count(), b.tbt_s.count());
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(a.ttft_s.Quantile(q), b.ttft_s.Quantile(q)) << q;
    EXPECT_EQ(a.tbt_s.Quantile(q), b.tbt_s.Quantile(q)) << q;
  }
  ASSERT_EQ(a.per_class.size(), b.per_class.size());
  for (size_t c = 0; c < a.per_class.size(); ++c) {
    EXPECT_EQ(a.per_class[c].completed_requests, b.per_class[c].completed_requests);
    EXPECT_EQ(a.per_class[c].output_tokens, b.per_class[c].output_tokens);
    EXPECT_EQ(a.per_class[c].ttft_s.Quantile(0.95), b.per_class[c].ttft_s.Quantile(0.95));
    EXPECT_EQ(a.per_class[c].tbt_s.Quantile(0.99), b.per_class[c].tbt_s.Quantile(0.99));
  }
}

}  // namespace
}  // namespace litegpu
