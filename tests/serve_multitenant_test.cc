// Multi-tenant serving studies end-to-end through the Runner: per-class
// report blocks, determinism, single-class compatibility, and the
// all-classes knee rule.

#include <gtest/gtest.h>

#include "src/core/runner.h"
#include "src/core/scenario.h"
#include "src/util/json.h"

namespace litegpu {
namespace {

std::vector<RequestClass> ChatAndBatchMix() {
  RequestClass chat;
  chat.name = "chat";
  chat.weight = 0.7;
  RequestClass batch;
  batch.name = "batch";
  batch.weight = 0.3;
  batch.prompt_tokens = 4000;
  batch.output_tokens = 800;
  batch.ttft_slo_s = 8.0;
  batch.tbt_slo_s = 0.2;
  return {chat, batch};
}

Scenario MultitenantServe(double load = 0.6, double horizon_s = 20.0) {
  ServeKnobs knobs;
  knobs.load = load;
  knobs.horizon_s = horizon_s;
  knobs.classes = ChatAndBatchMix();
  return *ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build();
}

TEST(MultitenantServe, ReportsPerClassLatencyGoodputAndAttainment) {
  RunReport report = Runner().Run(MultitenantServe());
  ASSERT_TRUE(report.ok) << report.error;
  const auto& serve = std::get<ServeStudyReport>(report.payload);
  ASSERT_EQ(serve.classes.size(), 2u);
  EXPECT_EQ(serve.classes[0].name, "chat");
  EXPECT_EQ(serve.classes[1].name, "batch");
  EXPECT_DOUBLE_EQ(serve.classes[0].share + serve.classes[1].share, 1.0);

  int admitted = 0, completed = 0;
  for (const auto& cls : serve.classes) {
    admitted += cls.admitted_requests;
    completed += cls.completed_requests;
    EXPECT_GT(cls.completed_requests, 0) << cls.name;
    EXPECT_GT(cls.ttft_p99_s, 0.0) << cls.name;
    EXPECT_GE(cls.ttft_p99_s, cls.ttft_p50_s) << cls.name;
    EXPECT_GT(cls.tbt_p99_s, 0.0) << cls.name;
    EXPECT_GT(cls.goodput_tokens_per_s, 0.0) << cls.name;
    EXPECT_GE(cls.ttft_attainment, 0.0) << cls.name;
    EXPECT_LE(cls.ttft_attainment, 1.0) << cls.name;
  }
  EXPECT_EQ(admitted, serve.admitted_requests);
  EXPECT_EQ(completed, serve.completed_requests);
  // The chat class inherits the workload SLOs; batch declared its own.
  EXPECT_DOUBLE_EQ(serve.classes[0].ttft_slo_s, 1.0);
  EXPECT_DOUBLE_EQ(serve.classes[0].tbt_slo_s, 0.050);
  EXPECT_DOUBLE_EQ(serve.classes[1].ttft_slo_s, 8.0);
  EXPECT_DOUBLE_EQ(serve.classes[1].tbt_slo_s, 0.2);
  // The batch class's longer outputs dominate its goodput share.
  EXPECT_GT(serve.classes[1].goodput_tokens_per_s,
            serve.classes[0].goodput_tokens_per_s * 0.5);

  // Both renderings carry the per-class blocks.
  std::string text = report.ToText();
  EXPECT_NE(text.find("per-class"), std::string::npos);
  EXPECT_NE(text.find("batch"), std::string::npos);
  Json j = report.ToJson();
  const Json* rep = j.Find("report");
  ASSERT_NE(rep, nullptr);
  const Json* classes = rep->Find("classes");
  ASSERT_NE(classes, nullptr);
  EXPECT_EQ(classes->size(), 2u);
}

TEST(MultitenantServe, DeterministicAcrossRepeatedRuns) {
  RunReport a = Runner().Run(MultitenantServe());
  RunReport b = Runner().Run(MultitenantServe());
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.ToJson().Dump(), b.ToJson().Dump());
}

TEST(MultitenantServe, SingleClassReportCarriesNoClassBlocks) {
  // Classless scenarios must not grow classes keys anywhere in the report —
  // the pre-class JSON schema is preserved byte-for-byte.
  ServeKnobs knobs;
  knobs.load = 0.6;
  knobs.horizon_s = 10.0;
  Scenario s = *ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build();
  RunReport report = Runner().Run(s);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_TRUE(std::get<ServeStudyReport>(report.payload).classes.empty());
  EXPECT_EQ(report.ToJson().Dump().find("classes"), std::string::npos);
}

TEST(MultitenantSweep, BitIdenticalAtAnyThreadCount) {
  ServeSweepKnobs knobs;
  knobs.loads = {0.3, 0.6, 0.9};
  knobs.horizon_s = 8.0;
  knobs.classes = ChatAndBatchMix();
  Scenario serial =
      *ScenarioBuilder(StudyKind::kServeSweep).ServeSweep(knobs).Threads(1).Build();
  Scenario parallel = serial;
  parallel.exec.threads = 0;  // hardware concurrency
  RunReport a = Runner().Run(serial);
  RunReport b = Runner().Run(parallel);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.ToJson().Dump(), b.ToJson().Dump());
  const auto& sweep = std::get<ServeSweepReport>(a.payload);
  ASSERT_EQ(sweep.points.size(), 3u);
  for (const auto& point : sweep.points) {
    EXPECT_EQ(point.classes.size(), 2u);
  }
}

TEST(MultitenantSweep, KneeRequiresEveryClassToMeetItsSlos) {
  // A lenient-only mix finds a knee; adding a class with an impossible TBT
  // SLO must drag the knee to "none" — the knee is the highest load where
  // EVERY class meets its SLOs, not where the aggregate does.
  ServeSweepKnobs lenient;
  lenient.loads = {0.3, 0.6};
  lenient.horizon_s = 8.0;
  RequestClass chat;
  chat.name = "chat";
  lenient.classes = {chat};
  Scenario ok_scenario =
      *ScenarioBuilder(StudyKind::kServeSweep).ServeSweep(lenient).Threads(1).Build();
  RunReport ok_report = Runner().Run(ok_scenario);
  ASSERT_TRUE(ok_report.ok) << ok_report.error;
  const auto& ok_sweep = std::get<ServeSweepReport>(ok_report.payload);
  ASSERT_GE(ok_sweep.knee_index, 0);

  ServeSweepKnobs strict = lenient;
  RequestClass impossible;
  impossible.name = "impossible";
  impossible.weight = 0.2;
  impossible.tbt_slo_s = 1e-4;  // no decode step is this fast
  strict.classes.push_back(impossible);
  Scenario strict_scenario =
      *ScenarioBuilder(StudyKind::kServeSweep).ServeSweep(strict).Threads(1).Build();
  RunReport strict_report = Runner().Run(strict_scenario);
  ASSERT_TRUE(strict_report.ok) << strict_report.error;
  const auto& strict_sweep = std::get<ServeSweepReport>(strict_report.payload);
  EXPECT_EQ(strict_sweep.knee_index, -1);
  for (const auto& point : strict_sweep.points) {
    EXPECT_FALSE(point.slo_ok);
    ASSERT_EQ(point.classes.size(), 2u);
    EXPECT_FALSE(point.classes[1].slo_ok);
  }
}

TEST(MultitenantServe, AddingAClassLeavesExistingClassWorkloadUnchanged) {
  // Substream independence surfaces at the report level too: class "chat"
  // admits exactly the same requests whether or not "batch" rides along,
  // because its Poisson substream and its slice of the offered rate are
  // fixed by (seed, index, rate). Pin the arrival rate and pool shape so
  // adding the class changes neither.
  ServeKnobs solo;
  solo.arrival_rate_per_s = 30.0;
  solo.horizon_s = 10.0;
  solo.prefill_instances = 4;
  solo.decode_instances = 1;
  RequestClass chat;
  chat.name = "chat";
  chat.weight = 0.5;
  solo.classes = {chat};

  ServeKnobs mixed = solo;
  RequestClass batch;
  batch.name = "batch";
  batch.weight = 0.5;
  batch.output_tokens = 512;
  batch.ttft_slo_s = 10.0;
  batch.tbt_slo_s = 1.0;
  mixed.classes.push_back(batch);
  // Same per-class rate: solo carries chat at half the doubled rate.
  mixed.arrival_rate_per_s = 60.0;
  solo.classes[0].weight = 1.0;
  solo.arrival_rate_per_s = 30.0;

  RunReport a = Runner().Run(*ScenarioBuilder(StudyKind::kServe).Serve(solo).Build());
  RunReport b = Runner().Run(*ScenarioBuilder(StudyKind::kServe).Serve(mixed).Build());
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  const auto& chat_solo = std::get<ServeStudyReport>(a.payload).classes[0];
  const auto& chat_mixed = std::get<ServeStudyReport>(b.payload).classes[0];
  // The same arrivals were admitted (latency shifts — the pools are now
  // shared with batch — but the class's own workload is untouched).
  EXPECT_EQ(chat_solo.admitted_requests, chat_mixed.admitted_requests);
  EXPECT_DOUBLE_EQ(chat_solo.arrival_rate_per_s, chat_mixed.arrival_rate_per_s);
}

}  // namespace
}  // namespace litegpu
