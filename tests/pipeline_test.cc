#include <gtest/gtest.h>

#include "src/core/search.h"
#include "src/hw/catalog.h"
#include "src/roofline/pipeline.h"
#include "src/util/units.h"

namespace litegpu {
namespace {

WorkloadParams Workload() { return WorkloadParams{}; }
EngineParams Engine() { return EngineParams{}; }

TEST(PipelinePlan, Validation) {
  TransformerSpec model = Llama3_70B();
  EXPECT_TRUE(MakePipelinePlan(model, 4, 2).has_value());
  EXPECT_FALSE(MakePipelinePlan(model, 3, 2).has_value());   // bad TP
  EXPECT_FALSE(MakePipelinePlan(model, 4, 0).has_value());   // bad PP
  EXPECT_FALSE(MakePipelinePlan(model, 4, 81).has_value());  // > layers
  EXPECT_EQ(MakePipelinePlan(model, 4, 2)->TotalGpus(), 8);
}

TEST(PipelineFootprint, WeightsShrinkWithStages) {
  TransformerSpec model = Llama3_405B();
  auto tp8pp1 = MakePipelinePlan(model, 8, 1).value();
  auto tp8pp4 = MakePipelinePlan(model, 8, 4).value();
  double w1 = PipelineWeightBytesPerGpu(model, tp8pp1);
  double w4 = PipelineWeightBytesPerGpu(model, tp8pp4);
  EXPECT_LT(w4, w1 / 3.0);  // ~1/4 plus the unsharded embedding share
  EXPECT_GT(w4, w1 / 5.0);
}

TEST(PipelineFootprint, Pp1MatchesTpFootprintUpToHead) {
  // pp=1 holds all layers plus (here) one embedding-sized shard; the plain
  // TP footprint charges two (embedding + LM head).
  TransformerSpec model = Llama3_70B();
  auto plan = MakePipelinePlan(model, 8, 1).value();
  double pipeline = PipelineWeightBytesPerGpu(model, plan);
  double plain = WeightBytesPerGpu(model, plan.tp);
  double embed = EmbeddingWeightBytesPerGpu(model, plan.tp);
  EXPECT_NEAR(pipeline + embed, plain, 1e-6 * plain);
}

TEST(PipelineFootprint, KvShardsAcrossStages) {
  TransformerSpec model = Llama3_70B();
  auto pp1 = MakePipelinePlan(model, 8, 1).value();
  auto pp4 = MakePipelinePlan(model, 8, 4).value();
  EXPECT_NEAR(PipelineKvBytesPerTokenPerGpu(model, pp4),
              PipelineKvBytesPerTokenPerGpu(model, pp1) / 4.0, 1e-9);
}

TEST(PipelineDecode, Pp1MatchesPlainDecode) {
  TransformerSpec model = Llama3_70B();
  GpuSpec gpu = H100();
  auto plan = MakePipelinePlan(model, 8, 1).value();
  PipelineDecodeResult a =
      EvaluatePipelineDecode(model, gpu, *(&plan), 64, Workload(), Engine());
  DecodeResult b = EvaluateDecode(model, gpu, plan.tp, 64, Workload(), Engine());
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_NEAR(a.tbt_s, b.tbt_s, 0.02 * b.tbt_s);  // embedding omitted in stage
}

TEST(PipelineDecode, Enables405BOnFewerLiteGpusPerStage) {
  // 405B weights do not fit 16 Lite GPUs at TP=16, but TP=8 x PP=4 fits.
  TransformerSpec model = Llama3_405B();
  GpuSpec gpu = Lite();
  auto plan = MakePipelinePlan(model, 8, 4).value();
  PipelineDecodeResult r = EvaluatePipelineDecode(model, gpu, plan, 16, Workload(), Engine());
  EXPECT_TRUE(r.feasible);
}

TEST(PipelineDecode, TbtScalesWithStages) {
  TransformerSpec model = Llama3_70B();
  GpuSpec gpu = H100();
  WorkloadParams workload = Workload();
  workload.enforce_memory_capacity = false;
  auto pp2 = MakePipelinePlan(model, 4, 2).value();
  auto pp4 = MakePipelinePlan(model, 4, 4).value();
  // Same batch: fewer layers per stage but more hops; the rotation time
  // (pp * stage) stays roughly constant, never shrinks.
  PipelineDecodeResult a = EvaluatePipelineDecode(model, gpu, pp2, 64, workload, Engine());
  PipelineDecodeResult b = EvaluatePipelineDecode(model, gpu, pp4, 64, workload, Engine());
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_GT(b.tbt_s, 0.8 * a.tbt_s);
}

TEST(PipelineDecode, ThroughputCountsAllGpus) {
  TransformerSpec model = Llama3_70B();
  GpuSpec gpu = H100();
  auto plan = MakePipelinePlan(model, 2, 4).value();
  PipelineDecodeResult r = EvaluatePipelineDecode(model, gpu, plan, 64, Workload(), Engine());
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.tokens_per_s_per_sm, r.tokens_per_s / (8.0 * gpu.sm_count), 1e-9);
}

TEST(PipelinePrefill, FillDrainLatency) {
  TransformerSpec model = Llama3_70B();
  GpuSpec gpu = H100();
  auto plan = MakePipelinePlan(model, 2, 4).value();
  PipelinePrefillResult one = EvaluatePipelinePrefill(model, gpu, plan, 1, Workload(), Engine());
  PipelinePrefillResult eight =
      EvaluatePipelinePrefill(model, gpu, plan, 8, Workload(), Engine());
  ASSERT_TRUE(one.feasible && eight.feasible);
  // batch 1 takes pp hops; batch 8 takes (8 + pp - 1) hops.
  EXPECT_NEAR(eight.ttft_s / one.ttft_s, 11.0 / 4.0, 0.05);
}

TEST(PipelineSearch, FindsConfigForAllCaseStudyModels) {
  WorkloadParams workload = Workload();
  for (const auto& model : CaseStudyModels()) {
    PipelineSearchResult r = SearchPipelineDecode(model, Lite(), workload, Engine());
    EXPECT_TRUE(r.found) << model.name;
    EXPECT_TRUE(r.result.meets_slo) << model.name;
    EXPECT_LE(r.plan.TotalGpus(), Lite().max_gpus) << model.name;
  }
}

TEST(PipelineSearch, NeverWorseThanPureTp) {
  WorkloadParams workload = Workload();
  SearchOptions options;
  for (const auto& model : CaseStudyModels()) {
    DecodeSearchResult tp_only = SearchDecode(model, Lite(), options);
    PipelineSearchResult grid = SearchPipelineDecode(model, Lite(), workload, Engine());
    ASSERT_TRUE(grid.found) << model.name;
    if (tp_only.found) {
      // pp=1 rows subsume pure TP (up to the embedding-stage simplification),
      // so the grid optimum must be at least ~as good.
      EXPECT_GE(grid.result.tokens_per_s_per_sm,
                0.95 * tp_only.best.result.tokens_per_s_per_sm)
          << model.name;
    }
  }
}

TEST(PipelineSearch, PipeliningHelps405BOnLite) {
  // The headline of ablation A6: the TP=32-only 405B point improves once
  // the grid may pipeline.
  TransformerSpec model = Llama3_405B();
  SearchOptions options;
  DecodeSearchResult tp_only = SearchDecode(model, Lite(), options);
  PipelineSearchResult grid =
      SearchPipelineDecode(model, Lite(), Workload(), Engine());
  ASSERT_TRUE(tp_only.found);
  ASSERT_TRUE(grid.found);
  EXPECT_GT(grid.result.tokens_per_s_per_sm, tp_only.best.result.tokens_per_s_per_sm);
  EXPECT_GT(grid.plan.pp_degree, 1);
}

}  // namespace
}  // namespace litegpu
