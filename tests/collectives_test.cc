#include <gtest/gtest.h>

#include "src/collectives/cost.h"
#include "src/util/units.h"

namespace litegpu {
namespace {

LinkModel NvlinkClass() { return {450.0 * kGBps, 0.7e-6}; }
LinkModel OpticalClass() { return {112.5 * kGBps, 1.5e-6}; }

// --- all-reduce ---

TEST(AllReduce, ZeroForSingleGpuOrEmptyPayload) {
  EXPECT_DOUBLE_EQ(AllReduceTime(1e6, 1, NvlinkClass()), 0.0);
  EXPECT_DOUBLE_EQ(AllReduceTime(0.0, 8, NvlinkClass()), 0.0);
}

TEST(AllReduce, RingMatchesClosedForm) {
  LinkModel link{100.0 * kGBps, 1e-6};
  double payload = 8.0 * kMB;
  int n = 8;
  double expected = 2.0 * 7.0 * 1e-6 + 2.0 * 7.0 / 8.0 * payload / (100.0 * kGBps);
  EXPECT_NEAR(AllReduceTime(payload, n, link, CollectiveAlgo::kRing), expected, 1e-12);
}

TEST(AllReduce, HalvingDoublingMatchesClosedForm) {
  LinkModel link{100.0 * kGBps, 1e-6};
  double payload = 8.0 * kMB;
  int n = 8;  // power of two: 2*log2(8) = 6 steps
  double expected = 6.0 * 1e-6 + 2.0 * 7.0 / 8.0 * payload / (100.0 * kGBps);
  EXPECT_NEAR(
      AllReduceTime(payload, n, link, CollectiveAlgo::kRecursiveHalvingDoubling),
      expected, 1e-12);
}

TEST(AllReduce, AutoPicksMinimum) {
  LinkModel link = OpticalClass();
  for (double payload : {1.0 * kKB, 100.0 * kKB, 10.0 * kMB}) {
    for (int n : {2, 4, 8, 16, 32}) {
      double ring = AllReduceTime(payload, n, link, CollectiveAlgo::kRing);
      double tree =
          AllReduceTime(payload, n, link, CollectiveAlgo::kRecursiveHalvingDoubling);
      double automatic = AllReduceTime(payload, n, link, CollectiveAlgo::kAuto);
      EXPECT_DOUBLE_EQ(automatic, std::min(ring, tree));
    }
  }
}

TEST(AllReduce, TreeWinsForSmallPayloadsLargeN) {
  LinkModel link = OpticalClass();
  double small = 4.0 * kKB;
  double ring = AllReduceTime(small, 32, link, CollectiveAlgo::kRing);
  double tree = AllReduceTime(small, 32, link, CollectiveAlgo::kRecursiveHalvingDoubling);
  EXPECT_LT(tree, ring);
}

TEST(AllReduce, MonotoneInPayload) {
  LinkModel link = OpticalClass();
  double prev = 0.0;
  for (double payload = 1e3; payload <= 1e9; payload *= 2.0) {
    double t = AllReduceTime(payload, 16, link);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(AllReduce, DecreasingInBandwidth) {
  double payload = 4.0 * kMB;
  double prev = 1e9;
  for (double bw = 50.0; bw <= 1600.0; bw *= 2.0) {
    LinkModel link{bw * kGBps, 1.5e-6};
    double t = AllReduceTime(payload, 16, link);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(AllReduce, ApproachesBandwidthBoundAsAlphaVanishes) {
  // With alpha=0 the ring time is exactly 2(n-1)/n * S / BW.
  LinkModel link{200.0 * kGBps, 0.0};
  double payload = 64.0 * kMB;
  int n = 32;
  double expected = 2.0 * 31.0 / 32.0 * payload / (200.0 * kGBps);
  EXPECT_NEAR(AllReduceTime(payload, n, link, CollectiveAlgo::kRing), expected, 1e-15);
}

TEST(AllReduce, NonPowerOfTwoPaysExtraRounds) {
  LinkModel link{100.0 * kGBps, 1e-6};
  double p6 = AllReduceTime(1e5, 6, link, CollectiveAlgo::kRecursiveHalvingDoubling);
  double p8 = AllReduceTime(1e5, 8, link, CollectiveAlgo::kRecursiveHalvingDoubling);
  // n=6: 2*ceil(log2 6)=6 steps + 2 extra = 8 alphas; n=8: 6 alphas; but n=8
  // moves slightly more bytes (7/8 vs 5/6 fraction) -- latency term dominates
  // at this payload.
  EXPECT_GT(p6, p8);
}

// --- other collectives ---

TEST(AllGather, HalfOfAllReduceBandwidthTerm) {
  LinkModel link{100.0 * kGBps, 0.0};
  double payload = 10.0 * kMB;
  int n = 8;
  double ag = AllGatherTime(payload, n, link, CollectiveAlgo::kRing);
  double ar = AllReduceTime(payload, n, link, CollectiveAlgo::kRing);
  EXPECT_NEAR(ar, 2.0 * ag, 1e-12);
}

TEST(ReduceScatter, SymmetricToAllGather) {
  LinkModel link = OpticalClass();
  EXPECT_DOUBLE_EQ(ReduceScatterTime(5e6, 16, link), AllGatherTime(5e6, 16, link));
}

TEST(Broadcast, LogarithmicSteps) {
  LinkModel link{100.0 * kGBps, 1e-6};
  double payload = 1.0 * kMB;
  double t8 = BroadcastTime(payload, 8, link);
  double expected = 3.0 * (1e-6 + payload / (100.0 * kGBps));
  EXPECT_NEAR(t8, expected, 1e-12);
}

TEST(AllToAll, ScalesWithPeers) {
  LinkModel link = OpticalClass();
  double t4 = AllToAllTime(8e6, 4, link);
  double t16 = AllToAllTime(8e6, 16, link);
  EXPECT_GT(t16, t4);
}

TEST(BusBandwidth, PerfectRingReportsLinkBandwidth) {
  LinkModel link{300.0 * kGBps, 0.0};
  double busbw = AllReduceBusBandwidth(128.0 * kMB, 16, link, CollectiveAlgo::kRing);
  EXPECT_NEAR(busbw, 300.0 * kGBps, 1.0);
}

TEST(BusBandwidth, DegradesWithLatencyForSmallPayloads) {
  LinkModel link{300.0 * kGBps, 2e-6};
  double small = AllReduceBusBandwidth(16.0 * kKB, 16, link);
  double large = AllReduceBusBandwidth(256.0 * kMB, 16, link);
  EXPECT_LT(small, 0.5 * large);
}

// --- property sweep: auto algorithm never loses ---

class AllReduceSweep : public ::testing::TestWithParam<int> {};

TEST_P(AllReduceSweep, AutoNeverWorseThanEither) {
  int n = GetParam();
  LinkModel link = OpticalClass();
  for (double payload = 512.0; payload <= 1e9; payload *= 8.0) {
    double automatic = AllReduceTime(payload, n, link, CollectiveAlgo::kAuto);
    EXPECT_LE(automatic, AllReduceTime(payload, n, link, CollectiveAlgo::kRing) + 1e-15);
    EXPECT_LE(automatic,
              AllReduceTime(payload, n, link, CollectiveAlgo::kRecursiveHalvingDoubling) +
                  1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, AllReduceSweep,
                         ::testing::Values(2, 3, 4, 6, 8, 12, 16, 24, 32, 96));

}  // namespace
}  // namespace litegpu
