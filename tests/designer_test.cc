#include <gtest/gtest.h>

#include "src/core/designer.h"
#include "src/hw/catalog.h"

namespace litegpu {
namespace {

DesignInputs DefaultInputs() {
  DesignInputs inputs;
  inputs.model = Llama3_70B();
  return inputs;
}

TEST(Designer, H100ReportComplete) {
  ClusterDesignReport r = DesignCluster(H100(), DefaultInputs());
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.tokens_per_s, 0.0);
  EXPECT_GT(r.gpu_capex_usd, 0.0);
  EXPECT_GT(r.power.TotalWatts(), 0.0);
  EXPECT_GT(r.joules_per_token, 0.0);
  EXPECT_GT(r.usd_per_mtok, 0.0);
  EXPECT_GT(r.availability_no_spares, 0.99);
  EXPECT_GT(r.availability_one_spare, r.availability_no_spares);
}

TEST(Designer, LiteCapexPerInstanceCheaperPerToken) {
  // The paper's bottom line: even at matched performance, Lite clusters win
  // on performance per dollar because the silicon is cheaper.
  DesignInputs inputs = DefaultInputs();
  ClusterDesignReport h100 = DesignCluster(H100(), inputs);
  ClusterDesignReport lite = DesignCluster(LiteMemBw(), inputs);
  ASSERT_TRUE(h100.feasible);
  ASSERT_TRUE(lite.feasible);
  EXPECT_LT(lite.usd_per_mtok, h100.usd_per_mtok);
}

TEST(Designer, NetworkCapexShareSmallForH100GrowsForLite) {
  // Section 2: "networking costs are only a small fraction compared to the
  // GPU costs today. While the cost of networking should increase, we
  // expect the net gains to be positive."
  DesignInputs inputs = DefaultInputs();
  ClusterDesignReport h100 = DesignCluster(H100(), inputs);
  ClusterDesignReport lite = DesignCluster(Lite(), inputs);
  ASSERT_TRUE(h100.feasible && lite.feasible);
  double h100_share = h100.network_capex_usd / h100.gpu_capex_usd;
  double lite_share = lite.network_capex_usd / lite.gpu_capex_usd;
  EXPECT_LT(h100_share, 0.15);       // small fraction today
  EXPECT_GT(lite_share, h100_share);  // networking share grows with Lite
  EXPECT_LT(lite.total_capex_usd, h100.total_capex_usd);  // net gain positive
}

TEST(Designer, BlastRadiusSmallerForLite) {
  DesignInputs inputs = DefaultInputs();
  ClusterDesignReport h100 = DesignCluster(H100(), inputs);
  ClusterDesignReport lite = DesignCluster(Lite(), inputs);
  ASSERT_TRUE(h100.feasible && lite.feasible);
  EXPECT_LT(lite.blast_radius_fraction, h100.blast_radius_fraction);
}

TEST(Designer, InfeasibleModelHandled) {
  DesignInputs inputs = DefaultInputs();
  inputs.search.workload.tbt_slo_s = 1e-9;
  ClusterDesignReport r = DesignCluster(H100(), inputs);
  EXPECT_FALSE(r.feasible);
}

TEST(Designer, ComparisonTableRenders) {
  DesignInputs inputs = DefaultInputs();
  auto reports = CompareClusters({H100(), Lite(), LiteMemBw()}, inputs);
  ASSERT_EQ(reports.size(), 3u);
  std::string text = ClusterComparisonToText(reports);
  EXPECT_NE(text.find("H100"), std::string::npos);
  EXPECT_NE(text.find("Lite+MemBW"), std::string::npos);
  EXPECT_NE(text.find("$ / Mtok"), std::string::npos);
}

TEST(Designer, AmortizationScalesUsdPerMtok) {
  DesignInputs two = DefaultInputs();
  two.amortization_years = 2.0;
  DesignInputs four = DefaultInputs();
  four.amortization_years = 4.0;
  ClusterDesignReport a = DesignCluster(H100(), two);
  ClusterDesignReport b = DesignCluster(H100(), four);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_NEAR(a.usd_per_mtok, 2.0 * b.usd_per_mtok, 1e-6 * a.usd_per_mtok);
}

}  // namespace
}  // namespace litegpu
