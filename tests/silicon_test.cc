#include <gtest/gtest.h>

#include <cmath>

#include "src/silicon/cost.h"
#include "src/silicon/shoreline.h"
#include "src/silicon/wafer.h"
#include "src/silicon/yield.h"
#include "src/util/units.h"

namespace litegpu {
namespace {

constexpr double kH100DieMm2 = 814.0;

// --- wafer geometry ---

TEST(Wafer, H100ClassDieCount) {
  WaferSpec wafer;
  uint64_t dpw = DiesPerWaferSquare(wafer, kH100DieMm2);
  // Public estimates for reticle-class dies on 300mm wafers are ~60-70.
  EXPECT_GE(dpw, 50u);
  EXPECT_LE(dpw, 80u);
}

TEST(Wafer, QuarterDieGivesMoreThanFourTimes) {
  WaferSpec wafer;
  uint64_t big = DiesPerWaferSquare(wafer, kH100DieMm2);
  uint64_t quarter = DiesPerWaferSquare(wafer, kH100DieMm2 / 4.0);
  // Edge and packing losses shrink with die size.
  EXPECT_GT(quarter, 4 * big);
}

TEST(Wafer, ZeroForOversizedDie) {
  WaferSpec wafer;
  EXPECT_EQ(DiesPerWafer(wafer, 400.0, 400.0), 0u);
  EXPECT_EQ(DiesPerWafer(wafer, 0.0, 10.0), 0u);
}

TEST(Wafer, ExactGridWithinAnalyticApproximation) {
  WaferSpec wafer;
  for (double area : {100.0, 200.0, 400.0, 814.0}) {
    double side = std::sqrt(area);
    uint64_t approx = DiesPerWafer(wafer, side, side);
    uint64_t exact = DiesPerWaferExactGrid(wafer, side, side);
    // The analytic formula should be within ~20% of a grid placement.
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                0.2 * static_cast<double>(exact) + 5.0)
        << "area " << area;
  }
}

TEST(Wafer, MonotoneInDieArea) {
  WaferSpec wafer;
  uint64_t prev = DiesPerWaferSquare(wafer, 50.0);
  for (double area = 100.0; area <= 800.0; area += 50.0) {
    uint64_t cur = DiesPerWaferSquare(wafer, area);
    EXPECT_LE(cur, prev) << "area " << area;
    prev = cur;
  }
}

// --- yield models ---

class YieldModelTest : public ::testing::TestWithParam<YieldModel> {};

TEST_P(YieldModelTest, InUnitInterval) {
  DefectSpec defects;
  for (double area : {10.0, 100.0, 400.0, 814.0, 2000.0}) {
    double y = DieYield(GetParam(), defects, area);
    EXPECT_GT(y, 0.0) << "area " << area;
    EXPECT_LE(y, 1.0) << "area " << area;
  }
}

TEST_P(YieldModelTest, MonotoneDecreasingInArea) {
  DefectSpec defects;
  double prev = DieYield(GetParam(), defects, 1.0);
  for (double area = 10.0; area <= 2000.0; area += 10.0) {
    double y = DieYield(GetParam(), defects, area);
    EXPECT_LE(y, prev + 1e-12) << "area " << area;
    prev = y;
  }
}

TEST_P(YieldModelTest, MonotoneDecreasingInDefectDensity) {
  double prev = 1.0;
  for (double d0 = 0.01; d0 <= 0.5; d0 += 0.01) {
    DefectSpec defects;
    defects.density_per_cm2 = d0;
    double y = DieYield(GetParam(), defects, kH100DieMm2);
    EXPECT_LT(y, prev) << "d0 " << d0;
    prev = y;
  }
}

TEST_P(YieldModelTest, PerfectProcessYieldsOne) {
  DefectSpec defects;
  defects.density_per_cm2 = 0.0;
  EXPECT_DOUBLE_EQ(DieYield(GetParam(), defects, kH100DieMm2), 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllModels, YieldModelTest,
                         ::testing::Values(YieldModel::kPoisson, YieldModel::kMurphy,
                                           YieldModel::kSeeds,
                                           YieldModel::kNegativeBinomial),
                         [](const auto& param_info) {
                           std::string name = ToString(param_info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(Yield, PoissonMatchesClosedForm) {
  DefectSpec defects;
  defects.density_per_cm2 = 0.1;
  // 814 mm^2 = 8.14 cm^2; A*D = 0.814.
  EXPECT_NEAR(DieYield(YieldModel::kPoisson, defects, 814.0), std::exp(-0.814), 1e-12);
}

TEST(Yield, SeedsMatchesClosedForm) {
  DefectSpec defects;
  defects.density_per_cm2 = 0.1;
  EXPECT_NEAR(DieYield(YieldModel::kSeeds, defects, 814.0), 1.0 / 1.814, 1e-12);
}

TEST(Yield, NegativeBinomialApproachesPoissonForLargeAlpha) {
  DefectSpec defects;
  defects.cluster_alpha = 1e6;
  double nb = DieYield(YieldModel::kNegativeBinomial, defects, 814.0);
  double poisson = DieYield(YieldModel::kPoisson, defects, 814.0);
  EXPECT_NEAR(nb, poisson, 1e-4);
}

// The paper's headline Section-2 claim.
TEST(Yield, PaperClaimQuarterDie18xGain) {
  DefectSpec defects;  // 0.1 defects/cm^2 default
  double gain = YieldGainFromSplit(YieldModel::kMurphy, defects, kH100DieMm2, 4);
  EXPECT_NEAR(gain, 1.8, 0.1);
}

TEST(Yield, SplitGainAtLeastOne) {
  DefectSpec defects;
  for (auto model : {YieldModel::kPoisson, YieldModel::kMurphy, YieldModel::kSeeds,
                     YieldModel::kNegativeBinomial}) {
    for (int split : {1, 2, 4, 8, 16}) {
      EXPECT_GE(YieldGainFromSplit(model, defects, kH100DieMm2, split), 1.0)
          << ToString(model) << " split " << split;
    }
  }
}

// --- cost ---

TEST(Cost, KnownGoodDieCheaperForSmallDie) {
  WaferSpec wafer;
  DefectSpec defects;
  double big = KnownGoodDieCost(wafer, YieldModel::kMurphy, defects, kH100DieMm2);
  double quarter = KnownGoodDieCost(wafer, YieldModel::kMurphy, defects, kH100DieMm2 / 4.0);
  // Four quarter dies must cost well under one big die (yield + packing).
  EXPECT_LT(4.0 * quarter, 0.7 * big);
}

TEST(Cost, PaperClaimAlmostHalfManufacturingCost) {
  WaferSpec wafer;
  DefectSpec defects;
  double big = KnownGoodDieCost(wafer, YieldModel::kMurphy, defects, kH100DieMm2);
  double quarter = KnownGoodDieCost(wafer, YieldModel::kMurphy, defects, kH100DieMm2 / 4.0);
  double ratio = 4.0 * quarter / big;
  // "almost 50% reduction in manufacturing cost"
  EXPECT_NEAR(ratio, 0.5, 0.1);
}

TEST(Cost, PackagedGpuIncludesMemoryAndPackage) {
  WaferSpec wafer;
  DefectSpec defects;
  GpuBillOfMaterials bom;  // H100-like defaults
  double total = PackagedGpuCost(wafer, YieldModel::kMurphy, defects, bom);
  double silicon = KnownGoodDieCost(wafer, YieldModel::kMurphy, defects, bom.die_area_mm2);
  EXPECT_GT(total, silicon + bom.hbm_gb * bom.packaging.hbm_usd_per_gb);
}

TEST(Cost, SplitReportConsistent) {
  WaferSpec wafer;
  DefectSpec defects;
  GpuBillOfMaterials bom;
  SplitCostReport r = CompareSplitCost(wafer, YieldModel::kMurphy, defects, bom, 4);
  EXPECT_GT(r.big_gpu_usd, 0.0);
  EXPECT_GT(r.lite_gpu_usd, 0.0);
  EXPECT_NEAR(r.lite_total_usd, 4.0 * r.lite_gpu_usd, 1e-9);
  EXPECT_NEAR(r.cost_ratio, r.lite_total_usd / r.big_gpu_usd, 1e-12);
  EXPECT_GT(r.yield_gain, 1.5);
  EXPECT_LT(r.cost_ratio, 1.0);  // Lite cluster silicon is cheaper in total
  EXPECT_GT(r.lite_dies_per_wafer, 4 * r.big_dies_per_wafer);
}

// --- shoreline ---

TEST(Shoreline, PerimeterOfSquare) {
  EXPECT_DOUBLE_EQ(DiePerimeterMm(100.0), 40.0);
  EXPECT_DOUBLE_EQ(DiePerimeterMm(0.0), 0.0);
}

TEST(Shoreline, PaperClaimQuarteringDoublesShoreline) {
  double one = SplitPerimeterMm(kH100DieMm2, 1);
  double four = SplitPerimeterMm(kH100DieMm2, 4);
  EXPECT_NEAR(four / one, 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(ShorelineGain(4), 2.0);
}

TEST(Shoreline, GainIsSqrtOfSplit) {
  for (int split : {1, 2, 4, 9, 16, 25}) {
    EXPECT_NEAR(ShorelineGain(split), std::sqrt(static_cast<double>(split)), 1e-12);
  }
}

TEST(Shoreline, AchievableBandwidthScalesWithBudget) {
  ShorelineTech tech;
  ShorelineBudget narrow{0.3, 0.1, 0.6};
  ShorelineBudget wide{0.6, 0.2, 0.2};
  auto a = AchievableBandwidth(200.0, narrow, tech);
  auto b = AchievableBandwidth(200.0, wide, tech);
  EXPECT_NEAR(b.mem_bw_bytes_per_s / a.mem_bw_bytes_per_s, 2.0, 1e-9);
  EXPECT_NEAR(b.net_bw_bytes_per_s / a.net_bw_bytes_per_s, 2.0, 1e-9);
}

TEST(Shoreline, H100BandwidthFitsItsShoreline) {
  // The real H100 (3.35 TB/s HBM + 450 GB/s NVLink on an 814 mm^2 die) must
  // be feasible under our densities, or the model is miscalibrated.
  ShorelineTech tech;
  EXPECT_TRUE(BandwidthFeasible(814.0, 3352.0 * kGBps, 450.0 * kGBps, tech));
}

TEST(Shoreline, LiteMemBwVariantFitsDoubleMemoryBandwidth) {
  // Lite+MemBW: 1675 GB/s HBM + 112.5 GB/s net on a 203.5 mm^2 die.
  ShorelineTech tech;
  EXPECT_TRUE(BandwidthFeasible(814.0 / 4.0, 1675.0 * kGBps, 112.5 * kGBps, tech));
}

TEST(Shoreline, AbsurdBandwidthInfeasible) {
  ShorelineTech tech;
  EXPECT_FALSE(BandwidthFeasible(100.0, 100e12, 10e12, tech));
}

// --- GpuSpec -> BOM adapter (the fleet-compare pricing path) ---

GpuSpec PricingSpec(const std::string& name, double die_area_mm2, int dies,
                    double mem_gb) {
  GpuSpec gpu;
  gpu.name = name;
  gpu.die_area_mm2 = die_area_mm2;
  gpu.dies_per_package = dies;
  gpu.mem_capacity_bytes = mem_gb * kGB;
  return gpu;
}

TEST(BomFromGpuSpec, CopiesGeometryAndCapacityFromTheSpec) {
  GpuBillOfMaterials bom = BomFromGpuSpec(PricingSpec("big", 814.0, 1, 80.0), 12.0);
  EXPECT_DOUBLE_EQ(bom.die_area_mm2, 814.0);
  EXPECT_EQ(bom.dies_per_package, 1);
  EXPECT_DOUBLE_EQ(bom.hbm_gb, 80.0);
  EXPECT_DOUBLE_EQ(bom.packaging.hbm_usd_per_gb, 12.0);
}

TEST(BomFromGpuSpec, AdvancedPackagingTracksPerDieArea) {
  // The 400 mm^2 per-die threshold, the same convention the cluster
  // designer uses: one big die needs the interposer, a Lite-class split of
  // the same silicon does not, and a dual-die 814 mm^2 package (407 per
  // die) is just over the line.
  EXPECT_TRUE(BomFromGpuSpec(PricingSpec("big", 814.0, 1, 80.0), 12.0).packaging.advanced);
  EXPECT_FALSE(
      BomFromGpuSpec(PricingSpec("lite", 203.5, 1, 20.0), 12.0).packaging.advanced);
  EXPECT_TRUE(
      BomFromGpuSpec(PricingSpec("dual", 814.0, 2, 160.0), 12.0).packaging.advanced);
  EXPECT_FALSE(
      BomFromGpuSpec(PricingSpec("dual-small", 800.0, 2, 160.0), 12.0).packaging.advanced);
}

TEST(PricedGpuUsd, IsPackagedCostTimesMultiplier) {
  // Pinned by hand: the street price is exactly PackagedGpuCost on the
  // spec's BOM times the price multiplier — no hidden extra terms.
  WaferSpec wafer;
  DefectSpec defects;
  GpuSpec gpu = PricingSpec("big", 814.0, 1, 80.0);
  GpuBillOfMaterials bom = BomFromGpuSpec(gpu, 12.0);
  double cost = PackagedGpuCost(wafer, YieldModel::kMurphy, defects, bom);
  ASSERT_GT(cost, 0.0);
  EXPECT_DOUBLE_EQ(PricedGpuUsd(wafer, YieldModel::kMurphy, defects, gpu, 12.0, 8.0),
                   cost * 8.0);
  EXPECT_DOUBLE_EQ(PricedGpuUsd(wafer, YieldModel::kMurphy, defects, gpu, 12.0, 1.0),
                   cost);
}

TEST(PricedGpuUsd, LiteSplitUndercutsTheBigDiePerPackage) {
  // The paper's Section-2 direction, through the fleet pricing path: one
  // quarter-area Lite part (quarter memory, cheap package) costs well under
  // a quarter of the big part.
  WaferSpec wafer;
  DefectSpec defects;
  double big = PricedGpuUsd(wafer, YieldModel::kMurphy, defects,
                            PricingSpec("big", 814.0, 1, 80.0), 12.0, 8.0);
  double lite = PricedGpuUsd(wafer, YieldModel::kMurphy, defects,
                             PricingSpec("lite", 203.5, 1, 20.0), 12.0, 8.0);
  EXPECT_LT(4.0 * lite, big);
}

}  // namespace
}  // namespace litegpu
