// Property-based suites: invariances and scaling laws the whole model stack
// must satisfy, swept over the case-study models and Table-1 GPUs with
// parameterized gtest.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "src/core/search.h"
#include "src/hw/catalog.h"
#include "src/llm/footprint.h"
#include "src/llm/stages.h"
#include "src/roofline/engine.h"
#include "src/roofline/inference.h"

namespace litegpu {
namespace {

std::string SanitizeName(std::string s) {
  for (char& c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return s;
}

// ---------------------------------------------------------------------------
// Homogeneous-scaling invariance: scaling FLOPS, memory BW, net BW, SMs, and
// capacity of a GPU by k scales throughput by ~k and leaves tokens/s/SM
// unchanged (modulo fixed launch overheads and network latency, which we
// zero for the law to be exact).
// ---------------------------------------------------------------------------

class ScalingLaw : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(ScalingLaw, ThroughputHomogeneous) {
  auto [model_name, k] = GetParam();
  TransformerSpec model = FindModel(model_name).value();
  GpuSpec base = H100();
  GpuSpec scaled = base;
  scaled.flops *= k;
  scaled.mem_bw_bytes_per_s *= k;
  scaled.net_bw_bytes_per_s *= k;
  scaled.mem_capacity_bytes *= 1.0;  // capacity unscaled: same batch below
  EngineParams engine;
  engine.stage_overhead_s = 0.0;
  engine.network_latency_s = 0.0;
  WorkloadParams workload;
  auto plan = MakeTpPlan(model, 8).value();

  DecodeResult a = EvaluateDecode(model, base, plan, 32, workload, engine);
  DecodeResult b = EvaluateDecode(model, scaled, plan, 32, workload, engine);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_NEAR(b.tokens_per_s, k * a.tokens_per_s, 1e-6 * b.tokens_per_s);

  PrefillResult c = EvaluatePrefill(model, base, plan, 2, workload, engine);
  PrefillResult d = EvaluatePrefill(model, scaled, plan, 2, workload, engine);
  ASSERT_TRUE(c.feasible && d.feasible);
  EXPECT_NEAR(d.ttft_s, c.ttft_s / k, 1e-6 * c.ttft_s);
}

INSTANTIATE_TEST_SUITE_P(
    Models, ScalingLaw,
    ::testing::Combine(::testing::Values("Llama3-70B", "GPT3-175B", "Llama3-405B"),
                       ::testing::Values(0.5, 2.0, 4.0)),
    [](const auto& param_info) {
      return SanitizeName(std::get<0>(param_info.param)) + "_k" +
             std::to_string(static_cast<int>(std::get<1>(param_info.param) * 10));
    });

// ---------------------------------------------------------------------------
// Work conservation: cluster-total FLOPs and all-reduce payload are
// invariant under the TP degree (per-GPU work times degree is constant);
// HBM traffic only grows with degree via KV replication and never shrinks
// below the degree-1 total.
// ---------------------------------------------------------------------------

class TpInvariance : public ::testing::TestWithParam<std::string> {};

TEST_P(TpInvariance, ClusterFlopsInvariant) {
  TransformerSpec model = FindModel(GetParam()).value();
  PassShape shape{4, 1, 1499};
  double reference = -1.0;
  for (int degree : FeasibleTpDegrees(model, 32)) {
    auto plan = MakeTpPlan(model, degree).value();
    ModelWork work = BuildModelWork(model, plan, Phase::kDecode, shape);
    double cluster_flops = work.TotalFlops() * degree;
    if (reference < 0.0) {
      reference = cluster_flops;
    }
    // KV-projection FLOPs replicate past the KV-head count; allow 8% (Llama3-70B at tp=32 replicates 4x: +5.6%).
    EXPECT_NEAR(cluster_flops, reference, 0.08 * reference) << "tp" << degree;
  }
}

TEST_P(TpInvariance, WeightsPlusKvNeverBelowDegreeOneTotal) {
  TransformerSpec model = FindModel(GetParam()).value();
  auto base_plan = MakeTpPlan(model, 1).value();
  double base_total = WeightBytesPerGpu(model, base_plan) +
                      1000.0 * KvBytesPerTokenPerGpu(model, base_plan);
  for (int degree : FeasibleTpDegrees(model, 32)) {
    auto plan = MakeTpPlan(model, degree).value();
    double total = degree * (WeightBytesPerGpu(model, plan) +
                             1000.0 * KvBytesPerTokenPerGpu(model, plan));
    EXPECT_GE(total, base_total * (1.0 - 1e-9)) << "tp" << degree;
  }
}

TEST_P(TpInvariance, AllReducePayloadPerGpuInvariant) {
  // Megatron all-reduce payload is batch*tokens*d_model per stage regardless
  // of the degree (each GPU owns the full activation after the reduce).
  TransformerSpec model = FindModel(GetParam()).value();
  PassShape shape{8, 1, 999};
  double reference = -1.0;
  for (int degree : FeasibleTpDegrees(model, 32)) {
    if (degree == 1) {
      continue;
    }
    auto plan = MakeTpPlan(model, degree).value();
    ModelWork work = BuildModelWork(model, plan, Phase::kDecode, shape);
    double payload = work.TotalAllReduceBytes();
    if (reference < 0.0) {
      reference = payload;
    }
    EXPECT_DOUBLE_EQ(payload, reference) << "tp" << degree;
  }
}

INSTANTIATE_TEST_SUITE_P(Models, TpInvariance,
                         ::testing::Values("Llama3-70B", "GPT3-175B", "Llama3-405B"),
                         [](const auto& param_info) { return SanitizeName(param_info.param); });

// ---------------------------------------------------------------------------
// Search dominance: strictly better hardware can never produce a worse
// search optimum.
// ---------------------------------------------------------------------------

struct DominancePair {
  const char* better;
  const char* worse;
};

class SearchDominance : public ::testing::TestWithParam<DominancePair> {};

TEST_P(SearchDominance, DecodeOptimumMonotone) {
  auto [better_name, worse_name] = GetParam();
  GpuSpec better = FindGpu(better_name).value();
  GpuSpec worse = FindGpu(worse_name).value();
  SearchOptions options;
  for (const auto& model : CaseStudyModels()) {
    DecodeSearchResult a = SearchDecode(model, better, options);
    DecodeSearchResult b = SearchDecode(model, worse, options);
    if (b.found) {
      ASSERT_TRUE(a.found) << model.name;
      EXPECT_GE(a.best.result.tokens_per_s_per_sm,
                b.best.result.tokens_per_s_per_sm * (1.0 - 1e-9))
          << model.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, SearchDominance,
    ::testing::Values(DominancePair{"Lite+MemBW", "Lite"},
                      DominancePair{"Lite+MemBW+NetBW", "Lite+MemBW"},
                      DominancePair{"Lite+NetBW", "Lite"}),
    [](const auto& param_info) {
      return SanitizeName(std::string(param_info.param.better) + "_over_" + param_info.param.worse);
    });

// ---------------------------------------------------------------------------
// SLO monotonicity: loosening an SLO can only improve the optimum.
// ---------------------------------------------------------------------------

class SloMonotone : public ::testing::TestWithParam<double> {};

TEST_P(SloMonotone, LooserTbtNeverWorse) {
  double tighter = GetParam();
  TransformerSpec model = Llama3_70B();
  SearchOptions tight;
  tight.workload.tbt_slo_s = tighter;
  SearchOptions loose;
  loose.workload.tbt_slo_s = tighter * 2.0;
  DecodeSearchResult a = SearchDecode(model, Lite(), tight);
  DecodeSearchResult b = SearchDecode(model, Lite(), loose);
  if (a.found) {
    ASSERT_TRUE(b.found);
    EXPECT_GE(b.best.result.tokens_per_s_per_sm,
              a.best.result.tokens_per_s_per_sm * (1.0 - 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(TbtGrid, SloMonotone, ::testing::Values(0.01, 0.025, 0.05));

// ---------------------------------------------------------------------------
// Engine sanity under parameter sweeps.
// ---------------------------------------------------------------------------

class EfficiencySweep : public ::testing::TestWithParam<double> {};

TEST_P(EfficiencySweep, LowerEfficiencyNeverFaster) {
  double eff = GetParam();
  TransformerSpec model = Gpt3_175B();
  auto plan = MakeTpPlan(model, 8).value();
  ModelWork work = BuildModelWork(model, plan, Phase::kDecode, {32, 1, 1499});
  EngineParams ideal;
  EngineParams derated;
  derated.compute_efficiency = eff;
  derated.memory_efficiency = eff;
  double t_ideal = EvaluatePass(work, H100(), 8, ideal).total_s;
  double t_derated = EvaluatePass(work, H100(), 8, derated).total_s;
  EXPECT_GE(t_derated, t_ideal);
  // Memory-bound pass: time scales ~1/eff.
  EXPECT_NEAR(t_derated, t_ideal / eff, 0.12 * t_derated);
}

INSTANTIATE_TEST_SUITE_P(Efficiencies, EfficiencySweep,
                         ::testing::Values(0.5, 0.7, 0.9),
                         [](const auto& param_info) {
                           return "eff" + std::to_string(static_cast<int>(param_info.param * 100));
                         });

}  // namespace
}  // namespace litegpu
