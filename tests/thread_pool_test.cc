#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace litegpu {
namespace {

TEST(ResolveThreads, PositivePassesThrough) {
  EXPECT_EQ(ResolveThreads(1), 1);
  EXPECT_EQ(ResolveThreads(7), 7);
}

TEST(ResolveThreads, NonPositiveUsesHardwareConcurrency) {
  EXPECT_GE(ResolveThreads(0), 1);
  EXPECT_GE(ResolveThreads(-3), 1);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](int i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPool, ResultsCollectedInIndexOrder) {
  auto squares = ParallelMap<int>(4, 256, [](int i) { return i * i; });
  ASSERT_EQ(squares.size(), 256u);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

TEST(ThreadPool, OneVsManyThreadsProduceIdenticalResults) {
  auto work = [](int i) { return 1.0 / (i + 1.0) * (i % 7); };
  auto serial = ParallelMap<double>(1, 500, work);
  auto parallel = ParallelMap<double>(8, 500, work);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << i;  // bitwise, not approximate
  }
}

TEST(ThreadPool, SubmitFutureResolves) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  auto a = pool.Submit([&] { ran.fetch_add(1); });
  auto b = pool.Submit([&] { ran.fetch_add(1); });
  a.get();
  b.get();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexException) {
  ThreadPool pool(4);
  // Indices 100 and 400 both throw; the lowest must win deterministically
  // even though a later index may fail first on another worker.
  for (int attempt = 0; attempt < 10; ++attempt) {
    try {
      pool.ParallelFor(500, [](int i) {
        if (i == 100 || i == 400) {
          throw std::runtime_error("index " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "index 100");
    }
  }
}

TEST(ThreadPool, OtherIndicesStillRunWhenOneThrows) {
  // Serial and pooled paths share the semantics: all indices execute, the
  // lowest-index exception propagates afterwards.
  for (int threads : {1, 4}) {
    std::vector<std::atomic<int>> hits(64);
    try {
      ParallelFor(threads, 64, [&](int i) {
        hits[i].fetch_add(1);
        if (i == 7 || i == 40) {
          throw std::runtime_error("index " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "index 7") << threads;
    }
    int total = 0;
    for (const auto& hit : hits) {
      total += hit.load();
    }
    EXPECT_EQ(total, 64) << threads;
  }
}

TEST(ThreadPool, HandlesEmptyAndSingleRanges) {
  int calls = 0;
  ParallelFor(4, 0, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(4, 1, [&](int i) {
    EXPECT_EQ(i, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, MoreThreadsThanWork) {
  auto out = ParallelMap<int>(16, 3, [](int i) { return i + 1; });
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(ThreadPool, PoolIsReusableAcrossParallelFors) {
  ThreadPool pool(3);
  long total = 0;
  for (int round = 0; round < 20; ++round) {
    std::vector<int> values(100);
    pool.ParallelFor(100, [&](int i) { values[i] = i; });
    total += std::accumulate(values.begin(), values.end(), 0L);
  }
  EXPECT_EQ(total, 20L * (99 * 100 / 2));
}

}  // namespace
}  // namespace litegpu
