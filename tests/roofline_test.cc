#include <gtest/gtest.h>

#include "src/hw/catalog.h"
#include "src/roofline/engine.h"
#include "src/roofline/inference.h"
#include "src/util/units.h"

namespace litegpu {
namespace {

EngineParams DefaultEngine() { return EngineParams{}; }

// --- stage evaluation ---

TEST(Engine, ComputeBoundStage) {
  StageWork w;
  w.name = "gemm";
  w.flops = 1e12;       // 0.5 ms on H100
  w.weight_bytes = 1e6; // negligible
  StageTiming t = EvaluateStage(w, H100(), 1, DefaultEngine());
  EXPECT_EQ(t.bound, Bound::kCompute);
  EXPECT_NEAR(t.compute_s, 0.5e-3, 1e-9);
  EXPECT_NEAR(t.total_s, t.compute_s + t.overhead_s, 1e-12);
}

TEST(Engine, MemoryBoundStage) {
  StageWork w;
  w.name = "scan";
  w.flops = 1e9;
  w.weight_bytes = 33.52 * kGB;  // 10 ms on H100 HBM
  StageTiming t = EvaluateStage(w, H100(), 1, DefaultEngine());
  EXPECT_EQ(t.bound, Bound::kMemory);
  EXPECT_NEAR(t.memory_s, 10e-3, 1e-6);
}

TEST(Engine, NetworkBoundStage) {
  StageWork w;
  w.name = "sync";
  w.allreduce_bytes = 100.0 * kMB;
  StageTiming t = EvaluateStage(w, Lite(), 32, DefaultEngine());
  EXPECT_EQ(t.bound, Bound::kNetwork);
  EXPECT_GT(t.network_s, 0.0);
}

TEST(Engine, NoCollectiveAtDegreeOne) {
  StageWork w;
  w.allreduce_bytes = 100.0 * kMB;
  StageTiming t = EvaluateStage(w, Lite(), 1, DefaultEngine());
  EXPECT_DOUBLE_EQ(t.network_s, 0.0);
}

TEST(Engine, OverlapTakesMaxSerializedTakesSum) {
  StageWork w;
  w.flops = 1e12;        // 0.5ms compute on H100
  w.weight_bytes = 1.676 * kGB;  // 0.5ms memory
  EngineParams overlap = DefaultEngine();
  overlap.overlap = OverlapScope::kStage;
  EngineParams serial = DefaultEngine();
  serial.overlap = OverlapScope::kNone;
  StageTiming a = EvaluateStage(w, H100(), 1, overlap);
  StageTiming b = EvaluateStage(w, H100(), 1, serial);
  EXPECT_NEAR(a.total_s - a.overhead_s, 0.5e-3, 1e-6);
  EXPECT_NEAR(b.total_s - b.overhead_s, 1.0e-3, 1e-6);
}

TEST(Engine, LayerOverlapHidesCollectivesBehindAdjacentStages) {
  // At TP=32, the out_proj all-reduce exceeds its own tiny GEMM but fits
  // under the layer's total compute; layer-scope overlap must hide it.
  TransformerSpec model = Llama3_405B();
  auto plan = MakeTpPlan(model, 32).value();
  ModelWork work = BuildModelWork(model, plan, Phase::kPrefill, {8, 1500, 0});
  EngineParams stage_scope;
  stage_scope.overlap = OverlapScope::kStage;
  EngineParams layer_scope;
  layer_scope.overlap = OverlapScope::kLayer;
  GpuSpec gpu = LiteNetBw();
  PassTiming a = EvaluatePass(work, gpu, plan.degree, stage_scope);
  PassTiming b = EvaluatePass(work, gpu, plan.degree, layer_scope);
  EXPECT_LT(b.total_s, a.total_s);
  EngineParams none;
  none.overlap = OverlapScope::kNone;
  PassTiming c = EvaluatePass(work, gpu, plan.degree, none);
  EXPECT_GT(c.total_s, a.total_s);
}

TEST(Engine, EfficiencyScalesTimes) {
  StageWork w;
  w.flops = 1e12;
  EngineParams params = DefaultEngine();
  params.compute_efficiency = 0.5;
  StageTiming t = EvaluateStage(w, H100(), 1, params);
  EXPECT_NEAR(t.compute_s, 1.0e-3, 1e-9);
}

TEST(Engine, OverheadBoundForTinyStages) {
  StageWork w;
  w.flops = 1e3;
  StageTiming t = EvaluateStage(w, H100(), 1, DefaultEngine());
  EXPECT_EQ(t.bound, Bound::kOverhead);
}

// --- pass evaluation ---

TEST(Engine, PassAggregatesLayers) {
  TransformerSpec model = Llama3_70B();
  auto plan = MakeTpPlan(model, 8).value();
  ModelWork work = BuildModelWork(model, plan, Phase::kDecode, {8, 1, 1499});
  PassTiming pass = EvaluatePass(work, H100(), 8, DefaultEngine());
  double manual = pass.embedding.total_s + pass.lm_head.total_s;
  for (const auto& s : pass.layer_stages) {
    manual += s.total_s * work.num_layers;
  }
  EXPECT_NEAR(pass.total_s, manual, 1e-9);
  EXPECT_EQ(pass.num_layers, model.num_layers);
}

TEST(Engine, DecodePassMemoryBoundOnH100) {
  TransformerSpec model = Llama3_70B();
  auto plan = MakeTpPlan(model, 8).value();
  ModelWork work = BuildModelWork(model, plan, Phase::kDecode, {64, 1, 1499});
  PassTiming pass = EvaluatePass(work, H100(), 8, DefaultEngine());
  EXPECT_EQ(pass.DominantBound(), Bound::kMemory);
}

TEST(Engine, PrefillPassComputeBoundOnH100) {
  TransformerSpec model = Llama3_70B();
  auto plan = MakeTpPlan(model, 8).value();
  ModelWork work = BuildModelWork(model, plan, Phase::kPrefill, {1, 1500, 0});
  PassTiming pass = EvaluatePass(work, H100(), 8, DefaultEngine());
  EXPECT_EQ(pass.DominantBound(), Bound::kCompute);
}

// --- inference-level ---

TEST(Inference, PrefillTtftUnderOneSecondOnH100) {
  TransformerSpec model = Llama3_70B();
  auto plan = MakeTpPlan(model, 8).value();
  WorkloadParams workload;
  PrefillResult r = EvaluatePrefill(model, H100(), plan, 1, workload, DefaultEngine());
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.meets_slo);
  // 2*70e9*1500 FLOPs over 8 H100s at peak ~ 13 ms; allow overheads.
  EXPECT_GT(r.ttft_s, 5e-3);
  EXPECT_LT(r.ttft_s, 100e-3);
}

TEST(Inference, PrefillThroughputAccountsWholeBatch) {
  TransformerSpec model = Llama3_70B();
  auto plan = MakeTpPlan(model, 8).value();
  WorkloadParams workload;
  PrefillResult r = EvaluatePrefill(model, H100(), plan, 4, workload, DefaultEngine());
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.tokens_per_s, 4.0 * 1500.0 / r.ttft_s, 1e-6);
}

TEST(Inference, DecodeTbtGrowsWithBatch) {
  TransformerSpec model = Llama3_70B();
  auto plan = MakeTpPlan(model, 8).value();
  WorkloadParams workload;
  double prev = 0.0;
  for (int batch : {1, 8, 64, 256}) {
    DecodeResult r = EvaluateDecode(model, H100(), plan, batch, workload, DefaultEngine());
    ASSERT_TRUE(r.feasible) << batch;
    EXPECT_GT(r.tbt_s, prev);
    prev = r.tbt_s;
  }
}

TEST(Inference, DecodeThroughputPerSmMonotoneInBatch) {
  // The search exploits this monotonicity; verify it on a real model.
  TransformerSpec model = Llama3_70B();
  auto plan = MakeTpPlan(model, 8).value();
  WorkloadParams workload;
  double prev = 0.0;
  for (int batch = 1; batch <= 512; batch *= 2) {
    DecodeResult r = EvaluateDecode(model, H100(), plan, batch, workload, DefaultEngine());
    ASSERT_TRUE(r.feasible) << batch;
    EXPECT_GT(r.tokens_per_s_per_sm, prev) << batch;
    prev = r.tokens_per_s_per_sm;
  }
}

TEST(Inference, CapacityEnforcementRejectsOversizedBatch) {
  TransformerSpec model = Llama3_405B();
  auto plan = MakeTpPlan(model, 32).value();
  WorkloadParams workload;
  DecodeResult r = EvaluateDecode(model, Lite(), plan, 100000, workload, DefaultEngine());
  EXPECT_FALSE(r.feasible);
  workload.enforce_memory_capacity = false;
  r = EvaluateDecode(model, Lite(), plan, 100000, workload, DefaultEngine());
  EXPECT_TRUE(r.feasible);
}

TEST(Inference, WeightsDontFitMeansInfeasibleEvenBatchOne) {
  TransformerSpec model = Llama3_405B();
  auto plan = MakeTpPlan(model, 8).value();  // 50 GB of weights per GPU
  WorkloadParams workload;
  DecodeResult r = EvaluateDecode(model, Lite(), plan, 1, workload, DefaultEngine());
  EXPECT_FALSE(r.feasible);
}

TEST(Inference, MoreNetworkBandwidthNeverHurtsDecode) {
  TransformerSpec model = Llama3_405B();
  auto plan = MakeTpPlan(model, 32).value();
  WorkloadParams workload;
  DecodeResult base = EvaluateDecode(model, Lite(), plan, 64, workload, DefaultEngine());
  DecodeResult boosted =
      EvaluateDecode(model, LiteMemBwNetBw(), plan, 64, workload, DefaultEngine());
  ASSERT_TRUE(base.feasible);
  ASSERT_TRUE(boosted.feasible);
  EXPECT_LE(boosted.tbt_s, base.tbt_s);
}

TEST(Inference, OverclockSpeedsUpPrefill) {
  // Batch 8 keeps prefill firmly compute-bound, where the +FLOPS part wins
  // despite its halved HBM bandwidth (Table 1 trades shoreline to the NIC).
  TransformerSpec model = Llama3_70B();
  auto plan = MakeTpPlan(model, 8).value();
  WorkloadParams workload;
  PrefillResult base = EvaluatePrefill(model, LiteNetBw(), plan, 8, workload, DefaultEngine());
  PrefillResult oc =
      EvaluatePrefill(model, LiteNetBwFlops(), plan, 8, workload, DefaultEngine());
  ASSERT_TRUE(base.feasible);
  ASSERT_TRUE(oc.feasible);
  EXPECT_LT(oc.ttft_s, base.ttft_s);
}

}  // namespace
}  // namespace litegpu
