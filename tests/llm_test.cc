#include <gtest/gtest.h>

#include "src/llm/footprint.h"
#include "src/llm/model.h"
#include "src/llm/parallel.h"
#include "src/llm/stages.h"
#include "src/util/units.h"

namespace litegpu {
namespace {

// --- model catalog ---

TEST(Model, AllValidate) {
  for (const auto& m : {Llama3_8B(), Llama3_70B(), Gpt3_175B(), Llama3_405B()}) {
    EXPECT_EQ(m.Validate(), "") << m.name;
  }
}

TEST(Model, ParamCountsNearNominal) {
  // Within 15% of the marketing number (we omit norms/biases).
  EXPECT_NEAR(static_cast<double>(Llama3_8B().ParamCount()), 8e9, 0.15 * 8e9);
  EXPECT_NEAR(static_cast<double>(Llama3_70B().ParamCount()), 70e9, 0.15 * 70e9);
  EXPECT_NEAR(static_cast<double>(Gpt3_175B().ParamCount()), 175e9, 0.15 * 175e9);
  EXPECT_NEAR(static_cast<double>(Llama3_405B().ParamCount()), 405e9, 0.15 * 405e9);
}

TEST(Model, CaseStudyOrder) {
  auto models = CaseStudyModels();
  ASSERT_EQ(models.size(), 3u);
  EXPECT_EQ(models[0].name, "Llama3-70B");
  EXPECT_EQ(models[1].name, "GPT3-175B");
  EXPECT_EQ(models[2].name, "Llama3-405B");
}

TEST(Model, Gpt3IsMhaLlamaIsGqa) {
  EXPECT_EQ(Gpt3_175B().num_kv_heads, Gpt3_175B().num_heads);
  EXPECT_LT(Llama3_70B().num_kv_heads, Llama3_70B().num_heads);
}

TEST(Model, KvBytesPerTokenGpt3MuchLargerThanLlama) {
  // The paper attributes GPT3's worse decode degradation to its KV heads.
  double gpt3 = Gpt3_175B().KvBytesPerToken();
  double llama70 = Llama3_70B().KvBytesPerToken();
  EXPECT_GT(gpt3 / llama70, 10.0);
}

TEST(Model, ValidateCatchesInconsistencies) {
  TransformerSpec m = Llama3_70B();
  m.d_head = 64;  // heads*d_head != d_model now
  EXPECT_NE(m.Validate(), "");
  m = Llama3_70B();
  m.num_kv_heads = 7;
  EXPECT_NE(m.Validate(), "");
  m = Llama3_70B();
  m.ffn_matrices = 4;
  EXPECT_NE(m.Validate(), "");
}

TEST(Model, FindModel) {
  EXPECT_TRUE(FindModel("Llama3-405B").has_value());
  EXPECT_FALSE(FindModel("Llama4").has_value());
}

// --- tensor parallel plans ---

TEST(TpPlan, EvenShardingBelowKvHeads) {
  auto plan = MakeTpPlan(Llama3_70B(), 4);
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->q_heads_per_gpu, 16.0);
  EXPECT_DOUBLE_EQ(plan->kv_heads_per_gpu, 2.0);
  EXPECT_EQ(plan->kv_replication, 1);
}

TEST(TpPlan, ReplicationAboveKvHeads) {
  auto plan = MakeTpPlan(Llama3_70B(), 32);  // 8 KV heads < 32 shards
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->kv_heads_per_gpu, 1.0);
  EXPECT_EQ(plan->kv_replication, 4);
}

TEST(TpPlan, IdealShardKeepsScaling) {
  auto plan = MakeTpPlan(Llama3_70B(), 32, KvShardPolicy::kIdealShard);
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->kv_heads_per_gpu, 0.25);
  EXPECT_EQ(plan->kv_replication, 1);
}

TEST(TpPlan, RejectsNonDivisorDegrees) {
  EXPECT_FALSE(MakeTpPlan(Llama3_70B(), 3).has_value());   // 64 % 3 != 0
  EXPECT_FALSE(MakeTpPlan(Llama3_70B(), 0).has_value());
  EXPECT_FALSE(MakeTpPlan(Llama3_70B(), -2).has_value());
}

TEST(TpPlan, Gpt3AllowsDegree96) {
  auto plan = MakeTpPlan(Gpt3_175B(), 96);
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->kv_heads_per_gpu, 1.0);
  EXPECT_EQ(plan->kv_replication, 1);
}

TEST(TpPlan, FeasibleDegreesWithinMax) {
  auto degrees = FeasibleTpDegrees(Llama3_70B(), 32);
  // Divisors of 64 up to 32: 1 2 4 8 16 32.
  EXPECT_EQ(degrees, (std::vector<int>{1, 2, 4, 8, 16, 32}));
  auto degrees_gpt3 = FeasibleTpDegrees(Gpt3_175B(), 8);
  EXPECT_EQ(degrees_gpt3, (std::vector<int>{1, 2, 3, 4, 6, 8}));
}

// --- stage accounting ---

TEST(Stages, LayerHasFourStagesWithTwoAllReduces) {
  auto plan = MakeTpPlan(Llama3_70B(), 8).value();
  PassShape shape{8, 1500, 0};
  auto stages = LayerStages(Llama3_70B(), plan, Phase::kPrefill, shape);
  ASSERT_EQ(stages.size(), 4u);
  EXPECT_EQ(stages[0].name, "qkv_proj");
  EXPECT_EQ(stages[1].name, "attention");
  EXPECT_EQ(stages[2].name, "out_proj");
  EXPECT_EQ(stages[3].name, "mlp");
  int allreduces = 0;
  for (const auto& s : stages) {
    if (s.allreduce_bytes > 0.0) {
      ++allreduces;
    }
  }
  EXPECT_EQ(allreduces, 2);  // Megatron: one after attention, one after MLP
}

TEST(Stages, PrefillFlopsMatchTwoPdTimesTokens) {
  // Total cluster linear-layer FLOPs for a pass should be ~2 * params *
  // tokens (the standard estimate), ignoring attention quadratic terms.
  TransformerSpec model = Llama3_70B();
  auto plan = MakeTpPlan(model, 1).value();
  PassShape shape{1, 512, 0};
  ModelWork work = BuildModelWork(model, plan, Phase::kPrefill, shape);
  double linear_flops = 0.0;
  for (const auto& s : work.layer_stages) {
    if (s.name != "attention") {
      linear_flops += s.flops * work.num_layers;
    }
  }
  linear_flops += work.lm_head.flops;
  double expected = 2.0 * static_cast<double>(model.ParamCount()) * 512.0;
  // LM head only runs for the last token, so we are slightly below 2*P*N.
  EXPECT_NEAR(linear_flops, expected, 0.05 * expected);
}

TEST(Stages, DecodeAttentionReadsWholeKvCache) {
  TransformerSpec model = Llama3_70B();
  auto plan = MakeTpPlan(model, 8).value();
  PassShape shape{4, 1, 1749};
  auto stages = LayerStages(model, plan, Phase::kDecode, shape);
  const StageWork& attn = stages[1];
  // 4 seqs * 1750 tokens * 1 kv head * 128 * 2 * 1 byte.
  EXPECT_NEAR(attn.kv_bytes, 4.0 * 1750.0 * 1.0 * 128.0 * 2.0, 1.0);
}

TEST(Stages, ReplicationKeepsPerGpuKvConstantPastKvHeads) {
  TransformerSpec model = Llama3_70B();
  PassShape shape{4, 1, 999};
  auto at8 = LayerStages(model, MakeTpPlan(model, 8).value(), Phase::kDecode, shape);
  auto at32 = LayerStages(model, MakeTpPlan(model, 32).value(), Phase::kDecode, shape);
  EXPECT_DOUBLE_EQ(at8[1].kv_bytes, at32[1].kv_bytes);  // floor at 1 head
  auto ideal32 = LayerStages(model, MakeTpPlan(model, 32, KvShardPolicy::kIdealShard).value(),
                             Phase::kDecode, shape);
  EXPECT_NEAR(ideal32[1].kv_bytes, at8[1].kv_bytes / 4.0, 1e-6);
}

TEST(Stages, WorkScalesLinearlyWithBatch) {
  TransformerSpec model = Gpt3_175B();
  auto plan = MakeTpPlan(model, 8).value();
  PassShape b1{1, 1, 499};
  PassShape b16{16, 1, 499};
  auto s1 = LayerStages(model, plan, Phase::kDecode, b1);
  auto s16 = LayerStages(model, plan, Phase::kDecode, b16);
  for (size_t i = 0; i < s1.size(); ++i) {
    EXPECT_NEAR(s16[i].flops, 16.0 * s1[i].flops, 1e-6 * s16[i].flops) << s1[i].name;
    // Weights are read once regardless of batch.
    EXPECT_DOUBLE_EQ(s16[i].weight_bytes, s1[i].weight_bytes) << s1[i].name;
  }
}

TEST(Stages, WeightBytesShardWithDegree) {
  TransformerSpec model = Gpt3_175B();
  PassShape shape{1, 128, 0};
  auto t1 = LayerStages(model, MakeTpPlan(model, 1).value(), Phase::kPrefill, shape);
  auto t8 = LayerStages(model, MakeTpPlan(model, 8).value(), Phase::kPrefill, shape);
  for (size_t i = 0; i < t1.size(); ++i) {
    if (t1[i].weight_bytes > 0.0) {
      EXPECT_NEAR(t8[i].weight_bytes, t1[i].weight_bytes / 8.0,
                  1e-9 * t1[i].weight_bytes)
          << t1[i].name;
    }
  }
}

TEST(Stages, OperationalIntensityHigherForPrefill) {
  TransformerSpec model = Llama3_70B();
  auto plan = MakeTpPlan(model, 8).value();
  ModelWork prefill = BuildModelWork(model, plan, Phase::kPrefill, {1, 1500, 0});
  ModelWork decode = BuildModelWork(model, plan, Phase::kDecode, {1, 1, 1499});
  double oi_prefill = prefill.TotalFlops() / prefill.TotalHbmBytes();
  double oi_decode = decode.TotalFlops() / decode.TotalHbmBytes();
  EXPECT_GT(oi_prefill, 50.0 * oi_decode);
}

TEST(Stages, AllReduceCountMatchesLayers) {
  TransformerSpec model = Llama3_405B();
  auto plan = MakeTpPlan(model, 8).value();
  ModelWork work = BuildModelWork(model, plan, Phase::kDecode, {1, 1, 99});
  EXPECT_EQ(work.NumAllReduces(), 2 * model.num_layers);
}

// --- footprint ---

TEST(Footprint, WeightBytesMatchModelAtDegreeOne) {
  for (const auto& model : CaseStudyModels()) {
    auto plan = MakeTpPlan(model, 1).value();
    EXPECT_NEAR(WeightBytesPerGpu(model, plan), model.WeightBytes(),
                1e-6 * model.WeightBytes())
        << model.name;
  }
}

TEST(Footprint, WeightsShardInverselyUntilKvFloor) {
  TransformerSpec model = Llama3_70B();
  double w1 = WeightBytesPerGpu(model, MakeTpPlan(model, 1).value());
  double w8 = WeightBytesPerGpu(model, MakeTpPlan(model, 8).value());
  // KV projection weights are a small fraction; within 5% of perfect 1/8.
  EXPECT_NEAR(w8, w1 / 8.0, 0.05 * w1 / 8.0);
}

TEST(Footprint, KvPerTokenFloorsUnderReplication) {
  TransformerSpec model = Llama3_70B();
  double at8 = KvBytesPerTokenPerGpu(model, MakeTpPlan(model, 8).value());
  double at16 = KvBytesPerTokenPerGpu(model, MakeTpPlan(model, 16).value());
  double at32 = KvBytesPerTokenPerGpu(model, MakeTpPlan(model, 32).value());
  EXPECT_DOUBLE_EQ(at8, at16);
  EXPECT_DOUBLE_EQ(at16, at32);
  double total_per_token = model.KvBytesPerToken();
  EXPECT_NEAR(at8, total_per_token / 8.0, 1e-9);
}

TEST(Footprint, MaxBatchZeroWhenWeightsDontFit) {
  // Llama3-405B at TP=16 needs >25 GB of weights per GPU; Lite has 20 GB.
  TransformerSpec model = Llama3_405B();
  auto plan = MakeTpPlan(model, 16).value();
  EXPECT_EQ(MaxBatchForCapacity(model, plan, 1, 1756, 20.0 * kGB), 0);
}

TEST(Footprint, MaxBatchPositiveOnH100) {
  TransformerSpec model = Llama3_70B();
  auto plan = MakeTpPlan(model, 8).value();
  int max_batch = MaxBatchForCapacity(model, plan, 1, 1756, 80.0 * kGB);
  EXPECT_GT(max_batch, 500);
  EXPECT_LT(max_batch, 4000);
}

TEST(Footprint, MaxBatchIsExactBoundary) {
  TransformerSpec model = Llama3_70B();
  auto plan = MakeTpPlan(model, 8).value();
  double cap = 80.0 * kGB;
  int b = MaxBatchForCapacity(model, plan, 1, 1756, cap);
  FootprintParams params;
  EXPECT_LE(MemoryNeededPerGpu(model, plan, b, 1, 1756), cap * params.usable_fraction);
  EXPECT_GT(MemoryNeededPerGpu(model, plan, b + 1, 1, 1756), cap * params.usable_fraction);
}

TEST(Footprint, MemoryAffineInBatch) {
  TransformerSpec model = Gpt3_175B();
  auto plan = MakeTpPlan(model, 8).value();
  double m1 = MemoryNeededPerGpu(model, plan, 1, 1, 1000);
  double m2 = MemoryNeededPerGpu(model, plan, 2, 1, 1000);
  double m3 = MemoryNeededPerGpu(model, plan, 3, 1, 1000);
  EXPECT_NEAR(m3 - m2, m2 - m1, 1e-6 * m2);
}

}  // namespace
}  // namespace litegpu
