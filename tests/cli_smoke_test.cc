// End-to-end smoke test for the litegpu CLI: executes the real binary on
// the checked-in examples/scenarios/*.json files and parses the JSON it
// prints. Paths are injected by CMake (LITEGPU_CLI_PATH / LITEGPU_SCENARIO_DIR).

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

#include "src/util/json.h"

#ifndef LITEGPU_CLI_PATH
#error "LITEGPU_CLI_PATH must be defined by the build"
#endif
#ifndef LITEGPU_SCENARIO_DIR
#error "LITEGPU_SCENARIO_DIR must be defined by the build"
#endif

namespace litegpu {
namespace {

struct CommandResult {
  int exit_code = -1;
  std::string stdout_text;
};

CommandResult RunCommand(const std::string& args) {
  CommandResult result;
  std::string command = std::string(LITEGPU_CLI_PATH) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    return result;
  }
  std::array<char, 4096> buffer;
  size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.stdout_text.append(buffer.data(), n);
  }
  int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string ScenarioPath(const std::string& name) {
  return std::string(LITEGPU_SCENARIO_DIR) + "/" + name;
}

// Like RunCommand, but folds stderr into the captured text — for asserting
// on diagnostic messages, which the CLI prints to stderr.
CommandResult RunCommandMergedOutput(const std::string& args) {
  CommandResult result;
  std::string command = std::string(LITEGPU_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    return result;
  }
  std::array<char, 4096> buffer;
  size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.stdout_text.append(buffer.data(), n);
  }
  int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

TEST(CliSmoke, RunExecutesEveryCheckedInScenarioAsJson) {
  // One file per study kind; every report must be valid JSON with ok=true.
  for (const char* file : {"fig3a.json", "fig3b.json", "search.json", "design.json",
                           "mcsim.json", "yield.json", "derive.json", "serve.json",
                           "serve_sweep.json", "serve_multitenant.json",
                           "serve_autoscale.json", "serve_faulty.json",
                           "serve_chaos.json", "fleet_compare.json"}) {
    CommandResult result = RunCommand("run " + ScenarioPath(file) + " --json");
    EXPECT_EQ(result.exit_code, 0) << file;
    std::string error;
    auto parsed = Json::Parse(result.stdout_text, &error);
    ASSERT_TRUE(parsed.has_value()) << file << ": " << error;
    if (parsed->is_array()) {  // batch files print one result per scenario
      ASSERT_GT(parsed->size(), 0u) << file;
      for (const Json& report : parsed->elements()) {
        EXPECT_TRUE(report.GetBool("ok", false)) << file;
        EXPECT_NE(report.Find("report"), nullptr) << file;
      }
    } else {
      EXPECT_TRUE(parsed->GetBool("ok", false)) << file;
      EXPECT_NE(parsed->Find("report"), nullptr) << file;
    }
  }
}

TEST(CliSmoke, JsonFlagBeforePositionalStillWorks) {
  CommandResult result = RunCommand("run --json " + ScenarioPath("yield.json"));
  EXPECT_EQ(result.exit_code, 0);
  auto parsed = Json::Parse(result.stdout_text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->GetBool("ok", false));
}

TEST(CliSmoke, RunExecutesTheBatchSuite) {
  CommandResult result = RunCommand("run " + ScenarioPath("paper_suite.json") + " --json");
  EXPECT_EQ(result.exit_code, 0);
  auto parsed = Json::Parse(result.stdout_text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_array());
  // fig3a, fig3b, yield, design + the big-GPU-vs-Lite-GPU serve pair.
  EXPECT_EQ(parsed->size(), 6u);
  for (const Json& report : parsed->elements()) {
    EXPECT_TRUE(report.GetBool("ok", false));
  }
}

TEST(CliSmoke, JsonFlagOnEverySubcommandEmitsParsableJson) {
  for (const char* args :
       {"search --model Llama3-8B --gpu H100 --max-batch 64 --json",
        "fig3a --json", "fig3b --json", "design --model Llama3-70B --json",
        "yield --json", "derive --split 4 --json", "mcsim --trials 1 --years 5 --json",
        "serve --load 0.5 --horizon 20 --json",
        "sweep --loads 0.5,0.8 --horizon 10 --json", "list --json"}) {
    CommandResult result = RunCommand(args);
    EXPECT_EQ(result.exit_code, 0) << args;
    std::string error;
    auto parsed = Json::Parse(result.stdout_text, &error);
    EXPECT_TRUE(parsed.has_value()) << args << ": " << error;
  }
}

TEST(CliSmoke, FleetSubcommandEmitsParetoFrontierAndIsThreadInvariant) {
  // The acceptance check for fleet-compare: `litegpu fleet` on the
  // checked-in catalog reports $/Mtoken and joules/token per candidate, a
  // non-empty Pareto frontier with a winner, and the whole report is
  // bit-identical at any --threads.
  CommandResult t1 =
      RunCommand("fleet " + ScenarioPath("fleet_compare.json") + " --json --threads 1");
  CommandResult t0 =
      RunCommand("fleet " + ScenarioPath("fleet_compare.json") + " --json --threads 0");
  CommandResult t13 =
      RunCommand("fleet " + ScenarioPath("fleet_compare.json") + " --json --threads 13");
  ASSERT_EQ(t1.exit_code, 0);
  ASSERT_EQ(t0.exit_code, 0);
  ASSERT_EQ(t13.exit_code, 0);
  EXPECT_EQ(t1.stdout_text, t0.stdout_text);
  EXPECT_EQ(t1.stdout_text, t13.stdout_text);
  auto parsed = Json::Parse(t1.stdout_text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->GetBool("ok", false));
  const Json* report = parsed->Find("report");
  ASSERT_NE(report, nullptr);
  const Json* candidates = report->Find("candidates");
  ASSERT_NE(candidates, nullptr);
  ASSERT_EQ(candidates->size(), 5u);
  for (const Json& c : candidates->elements()) {
    EXPECT_FALSE(c.GetString("name", "").empty());
    ASSERT_TRUE(c.GetBool("feasible", false)) << c.GetString("name", "");
    const Json* economics = c.Find("economics");
    ASSERT_NE(economics, nullptr);
    EXPECT_GT(economics->GetDouble("usd_per_mtoken", 0.0), 0.0);
    EXPECT_GT(economics->GetDouble("joules_per_token", 0.0), 0.0);
    const Json* knee = c.Find("knee");
    ASSERT_NE(knee, nullptr);
    EXPECT_GT(knee->GetDouble("goodput_tokens_per_s", 0.0), 0.0);
  }
  const Json* frontier = report->Find("frontier");
  ASSERT_NE(frontier, nullptr);
  EXPECT_GT(frontier->size(), 0u);
  EXPECT_GE(report->GetInt("winner_index", -1), 0);
  // Candidates sharing a resolved part share a platform: five distinct
  // parts in the checked-in catalog, five builds.
  EXPECT_EQ(report->GetInt("platform_builds", 0), 5);
  // `litegpu run` executes the same scenario identically.
  CommandResult via_run =
      RunCommand("run " + ScenarioPath("fleet_compare.json") + " --json --threads 1");
  ASSERT_EQ(via_run.exit_code, 0);
  EXPECT_EQ(via_run.stdout_text, t1.stdout_text);
  // Text mode renders the comparison table and names the winner.
  CommandResult text = RunCommand("fleet " + ScenarioPath("fleet_compare.json"));
  EXPECT_EQ(text.exit_code, 0);
  EXPECT_NE(text.stdout_text.find("$ / Mtok"), std::string::npos);
  EXPECT_NE(text.stdout_text.find("winner:"), std::string::npos);
}

TEST(CliSmoke, FleetSubcommandRejectsNonFleetScenarios) {
  CommandResult result =
      RunCommandMergedOutput("fleet " + ScenarioPath("serve_sweep.json"));
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.stdout_text.find("not fleet-compare"), std::string::npos);
}

TEST(CliSmoke, MultitenantScenarioReportsPerClassBlocks) {
  // The acceptance check for multi-tenant serving: the checked-in mix
  // reports per-class TTFT/TBT percentiles, goodput, and SLO attainment.
  CommandResult result =
      RunCommand("run " + ScenarioPath("serve_multitenant.json") + " --json");
  ASSERT_EQ(result.exit_code, 0);
  auto parsed = Json::Parse(result.stdout_text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->GetBool("ok", false));
  const Json* report = parsed->Find("report");
  ASSERT_NE(report, nullptr);
  const Json* classes = report->Find("classes");
  ASSERT_NE(classes, nullptr);
  ASSERT_EQ(classes->size(), 3u);
  for (const Json& cls : classes->elements()) {
    EXPECT_FALSE(cls.GetString("name", "").empty());
    const Json* latency = cls.Find("latency");
    ASSERT_NE(latency, nullptr);
    EXPECT_GT(latency->GetDouble("ttft_p99_s", 0.0), 0.0);
    EXPECT_GT(latency->GetDouble("tbt_p99_s", 0.0), 0.0);
    EXPECT_GT(cls.GetDouble("goodput_tokens_per_s", 0.0), 0.0);
    EXPECT_NE(cls.Find("ttft_attainment"), nullptr);
    EXPECT_NE(cls.Find("slo_ok"), nullptr);
  }
  // Text mode renders the per-class table.
  CommandResult text = RunCommand("run " + ScenarioPath("serve_multitenant.json"));
  EXPECT_EQ(text.exit_code, 0);
  EXPECT_NE(text.stdout_text.find("per-class"), std::string::npos);
  EXPECT_NE(text.stdout_text.find("batch-summarize"), std::string::npos);
}

TEST(CliSmoke, AutoscaleScenarioIsThreadInvariantAndReportsScaling) {
  // The acceptance check for time-varying traffic + autoscaling: the
  // checked-in diurnal day reports scale events and instance-hours, and the
  // whole report is bit-identical at any --threads.
  CommandResult t1 =
      RunCommand("run " + ScenarioPath("serve_autoscale.json") + " --json --threads 1");
  CommandResult t4 =
      RunCommand("run " + ScenarioPath("serve_autoscale.json") + " --json --threads 4");
  ASSERT_EQ(t1.exit_code, 0);
  ASSERT_EQ(t4.exit_code, 0);
  EXPECT_EQ(t1.stdout_text, t4.stdout_text);
  auto parsed = Json::Parse(t1.stdout_text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->GetBool("ok", false));
  const Json* report = parsed->Find("report");
  ASSERT_NE(report, nullptr);
  const Json* config = report->Find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_NE(config->Find("arrival"), nullptr);
  EXPECT_NE(config->Find("autoscaler"), nullptr);
  const Json* scale = report->Find("autoscaler");
  ASSERT_NE(scale, nullptr);
  EXPECT_EQ(scale->GetString("policy", ""), "reactive");
  EXPECT_GT(scale->GetDouble("gpu_hours", 0.0), 0.0);
  EXPECT_GT(scale->GetDouble("decode_instance_hours", 0.0), 0.0);
  EXPECT_GT(scale->GetDouble("ttft_attainment", 0.0), 0.0);
  const Json* events = scale->Find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->size(), 0u);
}

TEST(CliSmoke, FaultyScenarioIsThreadInvariantAndReportsBlastRadius) {
  // The acceptance check for fault injection: the checked-in faulty day
  // (H100 vs Lite instances) reports a fault event log, measured and
  // predicted availability, and per-pool blast radius — and the whole
  // report, fault event log included, is bit-identical at any --threads.
  CommandResult t1 =
      RunCommand("run " + ScenarioPath("serve_faulty.json") + " --json --threads 1");
  CommandResult t4 =
      RunCommand("run " + ScenarioPath("serve_faulty.json") + " --json --threads 4");
  ASSERT_EQ(t1.exit_code, 0);
  ASSERT_EQ(t4.exit_code, 0);
  EXPECT_EQ(t1.stdout_text, t4.stdout_text);
  auto parsed = Json::Parse(t1.stdout_text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_array());
  ASSERT_EQ(parsed->size(), 2u);  // H100 run + Lite run
  for (const Json& result : parsed->elements()) {
    ASSERT_TRUE(result.GetBool("ok", false));
    const Json* report = result.Find("report");
    ASSERT_NE(report, nullptr);
    const Json* config = report->Find("config");
    ASSERT_NE(config, nullptr);
    EXPECT_NE(config->Find("faults"), nullptr);
    const Json* faults = report->Find("faults");
    ASSERT_NE(faults, nullptr);
    EXPECT_EQ(faults->GetString("retry_policy", ""), "retry");
    const Json* events = faults->Find("events");
    ASSERT_NE(events, nullptr);
    EXPECT_GT(events->size(), 0u);
    const Json* decode = faults->Find("decode");
    ASSERT_NE(decode, nullptr);
    EXPECT_GT(decode->GetDouble("availability_measured", 0.0), 0.0);
    EXPECT_GT(decode->GetDouble("availability_predicted", 0.0), 0.0);
    EXPECT_GE(decode->GetDouble("blast_radius_fraction", -1.0), 0.0);
    EXPECT_GT(faults->GetDouble("goodput_tokens_per_s", 0.0), 0.0);
    EXPECT_GT(faults->GetDouble("baseline_goodput_tokens_per_s", 0.0), 0.0);
  }
  // Text mode renders the churn summary.
  CommandResult text = RunCommand("run " + ScenarioPath("serve_faulty.json"));
  EXPECT_EQ(text.exit_code, 0);
  EXPECT_NE(text.stdout_text.find("faults"), std::string::npos);
  EXPECT_NE(text.stdout_text.find("blast radius"), std::string::npos);
}

TEST(CliSmoke, ChaosScenarioIsThreadInvariantAndLiteBlastRadiusExceedsH100) {
  // The acceptance check for the three-axis robustness engine: the chaos
  // day (correlated domains + degradation + shedding on the H100-vs-Lite
  // pair) is bit-identical at any --threads, reports all three axes, and
  // the Lite pool's worst single domain outage destroys a larger fraction
  // of its served tokens than the H100 pool's under the same domain size
  // in silicon — more small-die instances fit in one rack, so one rack
  // takes out more of the (smaller) pool throughput.
  CommandResult t1 =
      RunCommand("run " + ScenarioPath("serve_chaos.json") + " --json --threads 1");
  CommandResult t4 =
      RunCommand("run " + ScenarioPath("serve_chaos.json") + " --json --threads 4");
  ASSERT_EQ(t1.exit_code, 0);
  ASSERT_EQ(t4.exit_code, 0);
  EXPECT_EQ(t1.stdout_text, t4.stdout_text);
  auto parsed = Json::Parse(t1.stdout_text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_array());
  ASSERT_EQ(parsed->size(), 2u);  // H100 run + Lite run
  double worst_fraction[2] = {0.0, 0.0};
  for (size_t idx = 0; idx < 2; ++idx) {
    const Json& result = parsed->elements()[idx];
    ASSERT_TRUE(result.GetBool("ok", false));
    const Json* report = result.Find("report");
    ASSERT_NE(report, nullptr);
    const Json* faults = report->Find("faults");
    ASSERT_NE(faults, nullptr);
    const Json* decode = faults->Find("decode");
    ASSERT_NE(decode, nullptr);
    // Domain axis: per-domain blast radii and the worst-single-event
    // columns are present and consistent.
    const Json* domains = decode->Find("domains");
    ASSERT_NE(domains, nullptr);
    EXPECT_GT(decode->GetDouble("availability_correlated", 0.0), 0.0);
    EXPECT_LT(decode->GetDouble("availability_correlated", 1.0),
              decode->GetDouble("availability_predicted", 0.0));
    worst_fraction[idx] = decode->GetDouble("worst_event_fraction", 0.0);
    EXPECT_GT(worst_fraction[idx], 0.0);
    // Degraded axis: windows opened and throttled seconds accumulated.
    EXPECT_GT(decode->GetDouble("degraded_instance_s", 0.0), 0.0);
    EXPECT_NE(faults->Find("degraded_goodput_tokens_per_s"), nullptr);
    // Shedding axis + stability verdict.
    EXPECT_NE(faults->Find("shed_requests"), nullptr);
    EXPECT_NE(faults->Find("shed_events"), nullptr);
    EXPECT_NE(faults->Find("stable"), nullptr);
    EXPECT_NE(faults->Find("time_to_drain_s"), nullptr);
  }
  EXPECT_GT(worst_fraction[1], worst_fraction[0])
      << "Lite worst-single-event blast radius should exceed H100's";
  // Text mode renders the three new summary lines.
  CommandResult text = RunCommand("run " + ScenarioPath("serve_chaos.json"));
  EXPECT_EQ(text.exit_code, 0);
  EXPECT_NE(text.stdout_text.find("domains:"), std::string::npos);
  EXPECT_NE(text.stdout_text.find("degraded:"), std::string::npos);
  EXPECT_NE(text.stdout_text.find("shedding:"), std::string::npos);
  EXPECT_NE(text.stdout_text.find("stability:"), std::string::npos);
}

TEST(CliSmoke, RobustnessKnobValidationExitsUsageError) {
  // Field-labelled exit-64 rejections for the new knobs, end to end.
  std::string path = ::testing::TempDir() + "litegpu_bad_robustness.json";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("{\"afr\": 100, \"retry_budget\": -1}", f);
  fclose(f);
  CommandResult result = RunCommandMergedOutput("serve --faults " + path);
  EXPECT_EQ(result.exit_code, 64);
  EXPECT_NE(result.stdout_text.find("retry_budget"), std::string::npos);
  // A spare slower than the repair it masks never activates.
  f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("{\"afr\": 100, \"hot_spares\": 1, \"mttr_hours\": 0.02,"
        " \"spare_activation_minutes\": 5}", f);
  fclose(f);
  result = RunCommandMergedOutput("serve --faults " + path);
  EXPECT_EQ(result.exit_code, 64);
  EXPECT_NE(result.stdout_text.find("spare_activation_minutes"), std::string::npos);
  // Domain churn without a domain size.
  f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("{\"domain_afr\": 100}", f);
  fclose(f);
  result = RunCommandMergedOutput("serve --faults " + path);
  EXPECT_EQ(result.exit_code, 64);
  EXPECT_NE(result.stdout_text.find("domain_gpus"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliSmoke, FaultsFlagRoundTripsThroughServe) {
  std::string path = ::testing::TempDir() + "litegpu_faults.json";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("{\"faults\": {\"afr\": 20000, \"mttr_hours\": 0.02,"
        " \"spare_activation_minutes\": 0.1, \"hot_spares\": 1,"
        " \"retry_policy\": \"drop\"}}", f);
  fclose(f);
  CommandResult result =
      RunCommand("serve --load 0.5 --horizon 60 --faults " + path + " --json");
  EXPECT_EQ(result.exit_code, 0);
  auto parsed = Json::Parse(result.stdout_text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->GetBool("ok", false));
  const Json* report = parsed->Find("report");
  ASSERT_NE(report, nullptr);
  const Json* config = report->Find("config");
  ASSERT_NE(config, nullptr);
  const Json* echoed = config->Find("faults");
  ASSERT_NE(echoed, nullptr);  // non-default knobs echo back in the config
  EXPECT_EQ(echoed->GetString("retry_policy", ""), "drop");
  EXPECT_DOUBLE_EQ(echoed->GetDouble("afr", 0.0), 20000.0);
  const Json* faults = report->Find("faults");
  ASSERT_NE(faults, nullptr);
  EXPECT_EQ(faults->GetString("retry_policy", ""), "drop");
  std::remove(path.c_str());
}

TEST(CliSmoke, UnknownRetryPolicyExitsUsageErrorWithSuggestion) {
  std::string path = ::testing::TempDir() + "litegpu_bad_faults.json";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("{\"afr\": 0.09, \"retry_policy\": \"rety\"}", f);
  fclose(f);
  CommandResult result = RunCommandMergedOutput("serve --faults " + path);
  EXPECT_EQ(result.exit_code, 64);
  EXPECT_NE(result.stdout_text.find("unknown retry policy"), std::string::npos);
  EXPECT_NE(result.stdout_text.find("did you mean 'retry'"), std::string::npos);
  // Invalid values are rejected even when the knob block is disabled.
  std::string zero_path = ::testing::TempDir() + "litegpu_bad_faults2.json";
  f = fopen(zero_path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("{\"afr\": 0, \"mttr_hours\": -1}", f);
  fclose(f);
  EXPECT_EQ(RunCommand("serve --faults " + zero_path).exit_code, 64);
  std::remove(path.c_str());
  std::remove(zero_path.c_str());
}

TEST(CliSmoke, InvalidAutoscalerFileExitsUsageError) {
  std::string path = ::testing::TempDir() + "litegpu_bad_autoscaler.json";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("{\"policy\": \"reactive\", \"interval_s\": -1}", f);
  fclose(f);
  EXPECT_EQ(RunCommand("serve --autoscaler " + path).exit_code, 64);
  std::string arrival_path = ::testing::TempDir() + "litegpu_bad_arrival.json";
  f = fopen(arrival_path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("{\"kind\": \"diurnl\"}", f);
  fclose(f);
  EXPECT_EQ(RunCommand("serve --arrival " + arrival_path).exit_code, 64);
  std::remove(path.c_str());
  std::remove(arrival_path.c_str());
}

TEST(CliSmoke, TextModeStillPrintsTables) {
  CommandResult result = RunCommand("run " + ScenarioPath("fig3a.json"));
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.stdout_text.find("Figure 3a"), std::string::npos);
  EXPECT_NE(result.stdout_text.find("Llama3-70B"), std::string::npos);
}

TEST(CliSmoke, UnknownFlagsAreRejectedWithSuggestion) {
  CommandResult typo = RunCommand("search --thread 4");
  EXPECT_EQ(typo.exit_code, 64);
  CommandResult typo2 = RunCommand("fig3a --mdoel Llama3-70B");
  EXPECT_EQ(typo2.exit_code, 64);
  // Valid spellings still pass.
  CommandResult ok = RunCommand("yield --split 2");
  EXPECT_EQ(ok.exit_code, 0);
}

TEST(CliSmoke, SweepRejectsMalformedGridSpecs) {
  EXPECT_EQ(RunCommand("sweep --loads 0.1:1.0").exit_code, 64);    // missing step
  EXPECT_EQ(RunCommand("sweep --loads nope").exit_code, 64);       // not numeric
  EXPECT_EQ(RunCommand("sweep --rates 30:10:5").exit_code, 64);    // hi < lo
}

TEST(CliSmoke, RunReportsMissingAndMalformedFiles) {
  EXPECT_EQ(RunCommand("run /nonexistent.json").exit_code, 1);
  EXPECT_EQ(RunCommand("run").exit_code, 64);
}

}  // namespace
}  // namespace litegpu
