#include <gtest/gtest.h>

#include "src/core/runner.h"
#include "src/core/scenario.h"
#include "src/util/exec_policy.h"

namespace litegpu {
namespace {

// Small, fast workloads for the perf studies.
ScenarioBuilder FastSearch() {
  ScenarioBuilder builder(StudyKind::kSearch);
  builder.Model("Llama3-8B").Gpu("H100").MaxBatch(64);
  return builder;
}

TEST(Runner, InvalidScenarioComesBackAsErrorReport) {
  Scenario bad = ScenarioBuilder(StudyKind::kSearch).Model("Ghost").Peek();
  RunReport report = Runner().Run(bad);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("unknown model"), std::string::npos);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(report.payload));
  // Error reports still render.
  EXPECT_NE(report.ToText().find("unknown model"), std::string::npos);
  EXPECT_EQ(report.ToJson().GetBool("ok", true), false);
}

TEST(Runner, SearchStudyProducesPerPairResults) {
  RunReport report = Runner().Run(*FastSearch().Name("fast").Build());
  ASSERT_TRUE(report.ok);
  EXPECT_EQ(report.study, StudyKind::kSearch);
  const auto& search = std::get<SearchStudyReport>(report.payload);
  ASSERT_EQ(search.pairs.size(), 1u);
  EXPECT_EQ(search.pairs[0].model, "Llama3-8B");
  EXPECT_TRUE(search.pairs[0].decode.found);
  EXPECT_TRUE(search.pairs[0].prefill.found);
  EXPECT_EQ(report.scenario_name, "fast");
}

TEST(Runner, Fig3StudyMatchesDirectEngineCall) {
  Scenario s = *ScenarioBuilder(StudyKind::kFig3b).Build();
  RunReport report = Runner().Run(s);
  ASSERT_TRUE(report.ok);
  const auto& fig3 = std::get<Fig3StudyReport>(report.payload);
  EXPECT_EQ(fig3.entries.size(), s.ResolvedModels().size() * s.ResolvedGpus().size());
  // H100 rows normalize to 1.0 against themselves.
  for (const auto& e : fig3.entries) {
    if (e.gpu_name == "H100" && e.found) {
      EXPECT_DOUBLE_EQ(e.normalized_vs_h100, 1.0);
    }
  }
}

TEST(Runner, McSimStudyIsDeterministicPerSeed) {
  McSimKnobs knobs;
  knobs.sim_years = 5.0;
  knobs.num_trials = 2;
  Scenario s = *ScenarioBuilder(StudyKind::kMcSim).McSim(knobs).Build();
  RunReport a = Runner().Run(s);
  RunReport b = Runner().Run(s);
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(a.ToJson().Dump(), b.ToJson().Dump());
}

TEST(Runner, YieldStudyCoversAllFourModels) {
  RunReport report = Runner().Run(*ScenarioBuilder(StudyKind::kYield).Build());
  ASSERT_TRUE(report.ok);
  const auto& yield = std::get<YieldStudyReport>(report.payload);
  ASSERT_EQ(yield.rows.size(), 4u);
  for (const auto& row : yield.rows) {
    EXPECT_GT(row.yield_split, row.yield_full);  // smaller dies yield better
    EXPECT_GT(row.gain, 1.0);
  }
}

TEST(Runner, DeriveStudyReportsFeasibility) {
  RunReport report = Runner().Run(*ScenarioBuilder(StudyKind::kDerive).Build());
  ASSERT_TRUE(report.ok);
  const auto& derive = std::get<DeriveStudyReport>(report.payload);
  EXPECT_TRUE(derive.result.shoreline_feasible);
  EXPECT_NE(report.ToText().find("feasible"), std::string::npos);
}

TEST(Runner, ExecPolicyOverrideConstructorWins) {
  // A Runner built with an explicit ExecPolicy forces it onto scenarios;
  // results are identical either way (determinism contract).
  Scenario s = *FastSearch().Threads(4).Build();
  RunReport with_scenario_exec = Runner().Run(s);
  ExecPolicy serial;
  serial.threads = 1;
  RunReport with_override = Runner(serial).Run(s);
  EXPECT_EQ(with_scenario_exec.ToJson().Dump(), with_override.ToJson().Dump());
}

TEST(Runner, ReportJsonRoundTripsThroughParser) {
  for (StudyKind kind :
       {StudyKind::kYield, StudyKind::kDerive, StudyKind::kSearch}) {
    ScenarioBuilder builder = kind == StudyKind::kSearch ? FastSearch()
                                                         : ScenarioBuilder(kind);
    RunReport report = Runner().Run(*builder.Build());
    ASSERT_TRUE(report.ok) << ToString(kind);
    std::string dumped = report.ToJson().Dump();
    std::string error;
    auto parsed = Json::Parse(dumped, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->GetString("study", ""), ToString(kind));
    EXPECT_TRUE(parsed->GetBool("ok", false));
    EXPECT_EQ(parsed->Dump(), dumped);
  }
}

TEST(RunScenarios, BatchIsBitIdenticalAtAnyThreadCount) {
  McSimKnobs mcsim;
  mcsim.sim_years = 5.0;
  std::vector<Scenario> batch = {
      *FastSearch().Name("s1").Build(),
      *ScenarioBuilder(StudyKind::kYield).Name("s2").Build(),
      *ScenarioBuilder(StudyKind::kMcSim).Name("s3").McSim(mcsim).Build(),
      *ScenarioBuilder(StudyKind::kDerive).Name("s4").Build(),
      ScenarioBuilder(StudyKind::kSearch).Name("bad").Model("Ghost").Peek(),
  };
  ExecPolicy serial;
  serial.threads = 1;
  std::vector<RunReport> reference = RunScenarios(batch, serial);
  ASSERT_EQ(reference.size(), batch.size());
  // Reports come back in scenario order; the invalid one fails in place.
  EXPECT_EQ(reference[0].scenario_name, "s1");
  EXPECT_FALSE(reference[4].ok);
  for (int threads : {2, 4, 8}) {
    ExecPolicy exec;
    exec.threads = threads;
    std::vector<RunReport> parallel = RunScenarios(batch, exec);
    ASSERT_EQ(parallel.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(parallel[i].ToJson().Dump(), reference[i].ToJson().Dump())
          << "threads=" << threads << " scenario " << i;
    }
  }
}

TEST(Runner, ServeStudyCrossChecksAnalyticCapacity) {
  ServeKnobs knobs;
  knobs.load = 0.7;
  knobs.horizon_s = 30.0;
  Scenario s = *ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build();
  RunReport report = Runner().Run(s);
  ASSERT_TRUE(report.ok) << report.error;
  const auto& serve = std::get<ServeStudyReport>(report.payload);
  EXPECT_EQ(serve.model, "Llama3-70B");
  EXPECT_EQ(serve.gpu, "H100");
  EXPECT_GT(serve.prefill_instances, 0);
  EXPECT_EQ(serve.decode_instances, 1);
  EXPECT_GT(serve.admitted_requests, 0);
  EXPECT_EQ(serve.completed_requests, serve.admitted_requests);  // drains
  // Below saturation the simulator reproduces the analytic capacity (the
  // bench_validation_serve expectation, now asserted).
  EXPECT_GT(serve.capacity_agreement, 0.9);
  EXPECT_LT(serve.capacity_agreement, 1.1);
  EXPECT_GT(serve.tbt_p99_s, 0.0);
  EXPECT_LE(serve.tbt_p99_s, 0.050 + 1e-9);  // decode SLO holds below capacity
  // Rendering covers the serve payload too.
  EXPECT_NE(report.ToText().find("Serving simulation"), std::string::npos);
  EXPECT_NE(report.ToJson().Dump().find("capacity_agreement"), std::string::npos);
}

TEST(Runner, ServeStudyIsDeterministicAtAnyThreadCount) {
  ServeKnobs knobs;
  knobs.horizon_s = 20.0;
  Scenario serial = *ScenarioBuilder(StudyKind::kServe).Serve(knobs).Threads(1).Build();
  Scenario parallel = serial;
  parallel.exec.threads = 0;  // hardware concurrency
  RunReport a = Runner().Run(serial);
  RunReport b = Runner().Run(parallel);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.ToJson().Dump(), b.ToJson().Dump());
}

TEST(Runner, ServeStudyFailsCleanlyWhenSloInfeasible) {
  ServeKnobs knobs;
  Scenario s = *ScenarioBuilder(StudyKind::kServe).Serve(knobs).TbtSlo(1e-9).Build();
  RunReport report = Runner().Run(s);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("no feasible"), std::string::npos);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(report.payload));
}

TEST(ExecPolicy, EffectiveThreadsIsTheEmbeddedPolicy) {
  // The PR-2 deprecated `threads` alias fields are gone: the embedded
  // ExecPolicy is the only knob, and EffectiveThreads resolves it directly.
  ExecPolicy exec;
  exec.threads = 8;
  EXPECT_EQ(EffectiveThreads(exec), 8);
  exec.threads = -1;  // explicit "all cores"
  EXPECT_EQ(EffectiveThreads(exec), -1);
  SearchOptions options;
  options.exec.threads = 4;
  EXPECT_EQ(EffectiveThreads(options.exec), 4);
}

}  // namespace
}  // namespace litegpu
