#include <gtest/gtest.h>

#include "src/util/flags.h"

namespace litegpu {
namespace {

Flags ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags::Parse(static_cast<int>(args.size()), args.data());
}

TEST(Flags, KeyEqualsValue) {
  Flags f = ParseArgs({"--model=Llama3-70B", "--tbt=0.05"});
  EXPECT_EQ(f.GetString("model"), "Llama3-70B");
  EXPECT_DOUBLE_EQ(f.GetDouble("tbt", 0.0), 0.05);
}

TEST(Flags, KeySpaceValue) {
  Flags f = ParseArgs({"--gpu", "H100", "--batch", "128"});
  EXPECT_EQ(f.GetString("gpu"), "H100");
  EXPECT_EQ(f.GetInt("batch", 0), 128);
}

TEST(Flags, BareSwitchIsTrue) {
  Flags f = ParseArgs({"--ideal-capacity", "--verbose"});
  EXPECT_TRUE(f.GetBool("ideal-capacity"));
  EXPECT_TRUE(f.GetBool("verbose"));
  EXPECT_FALSE(f.GetBool("absent"));
}

TEST(Flags, SwitchFollowedByFlagStaysSwitch) {
  Flags f = ParseArgs({"--quiet", "--model=X"});
  EXPECT_TRUE(f.GetBool("quiet"));
  EXPECT_EQ(f.GetString("model"), "X");
}

TEST(Flags, PositionalsAndSubcommand) {
  Flags f = ParseArgs({"search", "--gpu", "Lite", "extra"});
  EXPECT_EQ(f.Subcommand(), "search");
  ASSERT_EQ(f.positionals().size(), 2u);
  EXPECT_EQ(f.positionals()[1], "extra");
}

TEST(Flags, FallbacksOnMissingAndMalformed) {
  Flags f = ParseArgs({"--count=abc", "--rate=1.5x"});
  EXPECT_EQ(f.GetInt("count", 7), 7);
  EXPECT_DOUBLE_EQ(f.GetDouble("rate", 2.5), 2.5);
  EXPECT_EQ(f.GetInt("missing", -1), -1);
  EXPECT_EQ(f.GetString("missing", "dflt"), "dflt");
}

TEST(Flags, BoolSpellings) {
  Flags f = ParseArgs({"--a=yes", "--b=0", "--c=off", "--d=1", "--e=maybe"});
  EXPECT_TRUE(f.GetBool("a"));
  EXPECT_FALSE(f.GetBool("b", true));
  EXPECT_FALSE(f.GetBool("c", true));
  EXPECT_TRUE(f.GetBool("d"));
  EXPECT_TRUE(f.GetBool("e", true));  // unparsable -> fallback
}

TEST(Flags, HasDistinguishesPresence) {
  Flags f = ParseArgs({"--present=x"});
  EXPECT_TRUE(f.Has("present"));
  EXPECT_FALSE(f.Has("absent"));
}

TEST(Flags, EmptyArgv) {
  Flags f = ParseArgs({});
  EXPECT_EQ(f.Subcommand(), "");
  EXPECT_TRUE(f.positionals().empty());
}

TEST(Flags, DeclaredSwitchesDoNotConsumePositionals) {
  std::vector<const char*> args = {"prog", "run", "--json", "scenario.json"};
  Flags f = Flags::Parse(static_cast<int>(args.size()), args.data(), {"json"});
  EXPECT_TRUE(f.GetBool("json"));
  ASSERT_EQ(f.positionals().size(), 2u);
  EXPECT_EQ(f.positionals()[1], "scenario.json");
  // Without the declaration the old greedy behavior still applies.
  Flags greedy = Flags::Parse(static_cast<int>(args.size()), args.data());
  EXPECT_EQ(greedy.GetString("json"), "scenario.json");
}

TEST(Flags, GetUint64HandlesFullRange) {
  Flags f = ParseArgs({"--seed=18446744073709551615", "--neg=-1", "--bad=12x"});
  EXPECT_EQ(f.GetUint64("seed", 0), 18446744073709551615ull);
  EXPECT_EQ(f.GetUint64("neg", 7), 7u);   // negative -> fallback
  EXPECT_EQ(f.GetUint64("bad", 7), 7u);   // malformed -> fallback
  EXPECT_EQ(f.GetUint64("absent", 3), 3u);
}

TEST(Flags, UnknownFlagCheckAcceptsAllowedSet) {
  Flags f = ParseArgs({"--model=X", "--threads", "4", "--json"});
  EXPECT_EQ(f.UnknownFlagCheck({"model", "threads", "json", "unused"}), "");
  EXPECT_EQ(ParseArgs({}).UnknownFlagCheck({}), "");
}

TEST(Flags, UnknownFlagCheckNamesTheTypoWithSuggestion) {
  Flags f = ParseArgs({"--thread", "4"});
  std::string message = f.UnknownFlagCheck({"threads", "model"});
  EXPECT_NE(message.find("--thread"), std::string::npos);
  EXPECT_NE(message.find("did you mean --threads"), std::string::npos);

  Flags f2 = ParseArgs({"--mdoel=Llama3-70B"});
  std::string message2 = f2.UnknownFlagCheck({"model", "gpu"});
  EXPECT_NE(message2.find("did you mean --model"), std::string::npos);
}

TEST(Flags, UnknownFlagCheckSkipsSuggestionWhenNothingIsClose) {
  Flags f = ParseArgs({"--frobnicate"});
  std::string message = f.UnknownFlagCheck({"model", "gpu"});
  EXPECT_NE(message.find("--frobnicate"), std::string::npos);
  EXPECT_EQ(message.find("did you mean"), std::string::npos);
}

}  // namespace
}  // namespace litegpu
