#include <gtest/gtest.h>

#include "src/hw/catalog.h"
#include "src/memory/disagg.h"

namespace litegpu {
namespace {

struct DisaggSetup {
  TransformerSpec model = Llama3_70B();
  GpuSpec gpu = Lite();
  TpPlan plan = MakeTpPlan(Llama3_70B(), 8).value();
  MemoryPoolSpec pool;
  WorkloadParams workload;
  EngineParams engine;
};

TEST(Disagg, FullyLocalMatchesPlainDecode) {
  DisaggSetup s;
  DisaggPlacement local;
  local.local_fraction = 1.0;
  DisaggDecodeResult a =
      EvaluateDisaggDecode(s.model, s.gpu, s.plan, 64, s.pool, local, s.workload, s.engine);
  DecodeResult b = EvaluateDecode(s.model, s.gpu, s.plan, 64, s.workload, s.engine);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  EXPECT_NEAR(a.tbt_s, b.tbt_s, 1e-12);
  EXPECT_DOUBLE_EQ(a.remote_memory_s, 0.0);
}

TEST(Disagg, PoolRelievesCapacityCeiling) {
  // Batch 400 does not fit Lite's 20 GB locally at TP=8, but fits with half
  // the KV cache in the pool.
  DisaggSetup s;
  DisaggPlacement local;
  local.local_fraction = 1.0;
  DisaggDecodeResult no_pool =
      EvaluateDisaggDecode(s.model, s.gpu, s.plan, 400, s.pool, local, s.workload, s.engine);
  EXPECT_FALSE(no_pool.feasible);
  DisaggPlacement half;
  half.local_fraction = 0.5;
  DisaggDecodeResult with_pool =
      EvaluateDisaggDecode(s.model, s.gpu, s.plan, 400, s.pool, half, s.workload, s.engine);
  EXPECT_TRUE(with_pool.feasible);
}

TEST(Disagg, RemoteSliceSlowsTheStep) {
  DisaggSetup s;
  double prev = 0.0;
  for (double f : {1.0, 0.75, 0.5, 0.25}) {
    DisaggPlacement placement;
    placement.local_fraction = f;
    DisaggDecodeResult r = EvaluateDisaggDecode(s.model, s.gpu, s.plan, 128, s.pool,
                                                placement, s.workload, s.engine);
    ASSERT_TRUE(r.feasible) << f;
    EXPECT_GE(r.tbt_s, prev) << f;
    prev = r.tbt_s;
  }
}

TEST(Disagg, SharedNicSerializesDedicatedOverlaps) {
  DisaggSetup s;
  DisaggPlacement placement;
  placement.local_fraction = 0.5;
  MemoryPoolSpec dedicated = s.pool;
  dedicated.shares_nic = false;
  MemoryPoolSpec shared = s.pool;
  shared.shares_nic = true;
  DisaggDecodeResult a = EvaluateDisaggDecode(s.model, s.gpu, s.plan, 128, dedicated,
                                              placement, s.workload, s.engine);
  DisaggDecodeResult b = EvaluateDisaggDecode(s.model, s.gpu, s.plan, 128, shared, placement,
                                              s.workload, s.engine);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_LT(a.tbt_s, b.tbt_s);
}

TEST(Disagg, FasterPoolShrinksRemoteTime) {
  DisaggSetup s;
  DisaggPlacement placement;
  placement.local_fraction = 0.5;
  MemoryPoolSpec slow = s.pool;
  slow.bw_bytes_per_s = 25e9;
  MemoryPoolSpec fast = s.pool;
  fast.bw_bytes_per_s = 200e9;
  DisaggDecodeResult a =
      EvaluateDisaggDecode(s.model, s.gpu, s.plan, 128, slow, placement, s.workload, s.engine);
  DisaggDecodeResult b =
      EvaluateDisaggDecode(s.model, s.gpu, s.plan, 128, fast, placement, s.workload, s.engine);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_GT(a.remote_memory_s, b.remote_memory_s);
}

TEST(Disagg, MaxBatchGrowsAsKvMovesRemote) {
  DisaggSetup s;
  int max_context = s.workload.prompt_tokens + s.workload.output_tokens;
  DisaggPlacement all_local;
  all_local.local_fraction = 1.0;
  DisaggPlacement half;
  half.local_fraction = 0.5;
  int local_max = MaxBatchWithPool(s.model, s.plan, s.gpu, s.pool, all_local, max_context);
  int pooled_max = MaxBatchWithPool(s.model, s.plan, s.gpu, s.pool, half, max_context);
  EXPECT_GT(pooled_max, local_max);
  EXPECT_GT(local_max, 0);
}

TEST(Disagg, MaxBatchLimitedByPoolWhenMostlyRemote) {
  DisaggSetup s;
  MemoryPoolSpec tiny_pool = s.pool;
  tiny_pool.capacity_per_gpu_bytes = 1e9;
  DisaggPlacement mostly_remote;
  mostly_remote.local_fraction = 0.1;
  int max_context = s.workload.prompt_tokens + s.workload.output_tokens;
  int with_tiny =
      MaxBatchWithPool(s.model, s.plan, s.gpu, tiny_pool, mostly_remote, max_context);
  int with_big = MaxBatchWithPool(s.model, s.plan, s.gpu, s.pool, mostly_remote, max_context);
  EXPECT_LT(with_tiny, with_big);
}

TEST(Disagg, MinLocalFractionMonotoneInPoolBandwidth) {
  DisaggSetup s;
  MemoryPoolSpec slow = s.pool;
  slow.bw_bytes_per_s = 20e9;
  MemoryPoolSpec fast = s.pool;
  fast.bw_bytes_per_s = 400e9;
  double f_slow =
      MinLocalFractionForSlo(s.model, s.gpu, s.plan, 128, slow, s.workload, s.engine);
  double f_fast =
      MinLocalFractionForSlo(s.model, s.gpu, s.plan, 128, fast, s.workload, s.engine);
  ASSERT_GE(f_slow, 0.0);
  ASSERT_GE(f_fast, 0.0);
  EXPECT_LE(f_fast, f_slow);
}

TEST(Disagg, MinLocalFractionNegativeWhenSloImpossible) {
  DisaggSetup s;
  WorkloadParams tight = s.workload;
  tight.tbt_slo_s = 1e-6;
  double f = MinLocalFractionForSlo(s.model, s.gpu, s.plan, 64, s.pool, tight, s.engine);
  EXPECT_LT(f, 0.0);
}

TEST(Disagg, CapacityOffIgnoresLimits) {
  DisaggSetup s;
  s.workload.enforce_memory_capacity = false;
  DisaggPlacement local;
  local.local_fraction = 1.0;
  DisaggDecodeResult r = EvaluateDisaggDecode(s.model, s.gpu, s.plan, 100000, s.pool, local,
                                              s.workload, s.engine);
  EXPECT_TRUE(r.feasible);
}

}  // namespace
}  // namespace litegpu
