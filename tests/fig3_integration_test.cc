// End-to-end reproduction checks for Figure 3: the *shape* claims from the
// paper's captions must hold on the full catalog -> search -> normalize
// pipeline.
//
// Decode is checked in two modes: with the physical HBM-capacity constraint
// (deployable configurations) and with idealized capacity, which is the
// abstraction under which the paper's Figure-3b claims (e.g. Lite+MemBW
// exceeding H100 even for Llama3-405B) hold; see EXPERIMENTS.md.

#include <gtest/gtest.h>

#include <map>

#include "src/core/experiments.h"
#include "src/hw/catalog.h"

namespace litegpu {
namespace {

using EntryMap = std::map<std::pair<std::string, std::string>, Fig3Entry>;

EntryMap ToMap(const std::vector<Fig3Entry>& entries) {
  EntryMap map;
  for (const auto& e : entries) {
    map[{e.model_name, e.gpu_name}] = e;
  }
  return map;
}

std::vector<GpuSpec> PrefillGpus() {
  return {H100(), Lite(), LiteNetBw(), LiteNetBwFlops()};
}

std::vector<GpuSpec> DecodeGpus() {
  return {H100(), Lite(), LiteMemBw(), LiteMemBwNetBw()};
}

class Fig3Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SearchOptions options;
    prefill_ = new EntryMap(ToMap(RunPrefillStudy(CaseStudyModels(), PrefillGpus(), options)));
    decode_ = new EntryMap(ToMap(RunDecodeStudy(CaseStudyModels(), DecodeGpus(), options)));
    SearchOptions ideal = options;
    ideal.workload.enforce_memory_capacity = false;
    decode_ideal_ =
        new EntryMap(ToMap(RunDecodeStudy(CaseStudyModels(), DecodeGpus(), ideal)));
  }
  static void TearDownTestSuite() {
    delete prefill_;
    delete decode_;
    delete decode_ideal_;
    prefill_ = nullptr;
    decode_ = nullptr;
    decode_ideal_ = nullptr;
  }

  static const Fig3Entry& P(const std::string& model, const std::string& gpu) {
    return prefill_->at({model, gpu});
  }
  static const Fig3Entry& D(const std::string& model, const std::string& gpu) {
    return decode_->at({model, gpu});
  }
  static const Fig3Entry& DI(const std::string& model, const std::string& gpu) {
    return decode_ideal_->at({model, gpu});
  }

  static EntryMap* prefill_;
  static EntryMap* decode_;
  static EntryMap* decode_ideal_;
};

EntryMap* Fig3Test::prefill_ = nullptr;
EntryMap* Fig3Test::decode_ = nullptr;
EntryMap* Fig3Test::decode_ideal_ = nullptr;

const char* const kModels[] = {"Llama3-70B", "GPT3-175B", "Llama3-405B"};

// --- Figure 3a (prefill) ---

TEST_F(Fig3Test, PrefillAllConfigurationsFound) {
  for (const char* model : kModels) {
    for (const auto& gpu : PrefillGpus()) {
      EXPECT_TRUE(P(model, gpu.name).found) << model << "/" << gpu.name;
    }
  }
}

TEST_F(Fig3Test, PrefillH100NormalizedIsOne) {
  for (const char* model : kModels) {
    EXPECT_NEAR(P(model, "H100").normalized_vs_h100, 1.0, 1e-12) << model;
  }
}

// "All configurations perform similarly" for the small model.
TEST_F(Fig3Test, PrefillAllSimilarForLlama70B) {
  for (const auto& gpu : PrefillGpus()) {
    double norm = P("Llama3-70B", gpu.name).normalized_vs_h100;
    EXPECT_GT(norm, 0.8) << gpu.name;
    EXPECT_LT(norm, 1.25) << gpu.name;
  }
}

// "As the model sizes grow, the Lite cluster underperforms due to increased
// collectives causing network bottlenecks."
TEST_F(Fig3Test, PrefillLiteDegradesWithModelSize) {
  double small = P("Llama3-70B", "Lite").normalized_vs_h100;
  double large = P("Llama3-405B", "Lite").normalized_vs_h100;
  EXPECT_LT(large, small);
  EXPECT_LT(large, 0.95);
}

// "Increasing the network bandwidth compensates the increased network
// demand."
TEST_F(Fig3Test, PrefillNetBwCompensates) {
  for (const char* model : kModels) {
    EXPECT_GE(P(model, "Lite+NetBW").normalized_vs_h100,
              P(model, "Lite").normalized_vs_h100 - 1e-9)
        << model;
  }
  EXPECT_GT(P("Llama3-405B", "Lite+NetBW").normalized_vs_h100,
            P("Llama3-405B", "Lite").normalized_vs_h100);
  // Under stage-scope overlap the recovery is partial (the out_proj
  // all-reduce cannot hide behind its small GEMM); layer-scope overlap
  // pushes this to ~1.0 -- see bench_ablation_overlap.
  EXPECT_GT(P("Llama3-405B", "Lite+NetBW").normalized_vs_h100, 0.8);
}

// "Overclocking improves performance further as prefill workloads are
// compute-bound."
TEST_F(Fig3Test, PrefillOverclockImprovesFurther) {
  for (const char* model : kModels) {
    EXPECT_GT(P(model, "Lite+NetBW+FLOPS").normalized_vs_h100,
              P(model, "Lite+NetBW").normalized_vs_h100)
        << model;
  }
}

TEST_F(Fig3Test, PrefillIsComputeBoundOnH100) {
  for (const char* model : kModels) {
    EXPECT_EQ(P(model, "H100").dominant_bound, Bound::kCompute) << model;
  }
}

// --- Figure 3b (decode) ---

TEST_F(Fig3Test, DecodeAllConfigurationsFound) {
  for (const char* model : kModels) {
    for (const auto& gpu : DecodeGpus()) {
      EXPECT_TRUE(D(model, gpu.name).found) << model << "/" << gpu.name;
      EXPECT_TRUE(DI(model, gpu.name).found) << model << "/" << gpu.name;
    }
  }
}

TEST_F(Fig3Test, DecodeH100NormalizedIsOne) {
  for (const char* model : kModels) {
    EXPECT_NEAR(D(model, "H100").normalized_vs_h100, 1.0, 1e-12) << model;
    EXPECT_NEAR(DI(model, "H100").normalized_vs_h100, 1.0, 1e-12) << model;
  }
}

// "As model sizes and thus the number of required GPUs grow, the Lite
// cluster underperforms due to increased memory access intensities."
TEST_F(Fig3Test, DecodeLiteUnderperformsAndDegradesWithSize) {
  for (const char* model : kModels) {
    EXPECT_LT(D(model, "Lite").normalized_vs_h100, 1.0) << model;
    EXPECT_LT(DI(model, "Lite").normalized_vs_h100, 1.0) << model;
  }
  EXPECT_LT(D("Llama3-405B", "Lite").normalized_vs_h100,
            D("Llama3-70B", "Lite").normalized_vs_h100);
  EXPECT_LT(DI("Llama3-405B", "Lite").normalized_vs_h100,
            DI("Llama3-70B", "Lite").normalized_vs_h100);
}

// "The degradation is worse with GPT-3 due to it having more KV-heads
// resulting in proportionally longer memory-bound stages." (holds in the
// paper's idealized-capacity abstraction)
TEST_F(Fig3Test, DecodeGpt3DegradesMoreThanLlama70B) {
  EXPECT_LT(DI("GPT3-175B", "Lite").normalized_vs_h100,
            DI("Llama3-70B", "Lite").normalized_vs_h100);
}

// "As Lite-GPUs utilize their available shoreline for more memory bandwidth,
// performance improves and exceeds the current H100 cluster."
TEST_F(Fig3Test, DecodeMemBwImprovesOverLite) {
  for (const char* model : kModels) {
    EXPECT_GT(D(model, "Lite+MemBW").normalized_vs_h100,
              D(model, "Lite").normalized_vs_h100)
        << model;
    EXPECT_GT(DI(model, "Lite+MemBW").normalized_vs_h100,
              DI(model, "Lite").normalized_vs_h100)
        << model;
  }
}

TEST_F(Fig3Test, DecodeMemBwExceedsH100IdealizedAllModels) {
  for (const char* model : kModels) {
    EXPECT_GT(DI(model, "Lite+MemBW").normalized_vs_h100, 1.0) << model;
  }
}

TEST_F(Fig3Test, DecodeMemBwNetBwExceedsH100DeployableForGqaAndMha) {
  // Under the physical capacity constraint the 405B case stays below H100
  // (KV replication at TP=32 eats the capacity); the other two exceed it.
  EXPECT_GT(D("Llama3-70B", "Lite+MemBW+NetBW").normalized_vs_h100, 1.0);
  EXPECT_GT(D("GPT3-175B", "Lite+MemBW+NetBW").normalized_vs_h100, 1.0);
}

TEST_F(Fig3Test, DecodeIsMemoryBoundOnH100) {
  for (const char* model : kModels) {
    EXPECT_EQ(D(model, "H100").dominant_bound, Bound::kMemory) << model;
  }
}

TEST_F(Fig3Test, DecodeLatenciesMeetSlo) {
  for (const char* model : kModels) {
    for (const auto& gpu : DecodeGpus()) {
      const auto& e = D(model, gpu.name);
      if (e.found) {
        EXPECT_LE(e.latency_s, 0.050 + 1e-9) << model << "/" << gpu.name;
      }
    }
  }
}

TEST_F(Fig3Test, PrefillLatenciesMeetSlo) {
  for (const char* model : kModels) {
    for (const auto& gpu : PrefillGpus()) {
      const auto& e = P(model, gpu.name);
      if (e.found) {
        EXPECT_LE(e.latency_s, 1.0 + 1e-9) << model << "/" << gpu.name;
      }
    }
  }
}

TEST_F(Fig3Test, TableRendersEveryRow) {
  SearchOptions options;
  auto entries = RunDecodeStudy(CaseStudyModels(), DecodeGpus(), options);
  std::string text = Fig3ToText(entries, "fig3b");
  for (const char* model : kModels) {
    EXPECT_NE(text.find(model), std::string::npos);
  }
  EXPECT_NE(text.find("Lite+MemBW+NetBW"), std::string::npos);
}

}  // namespace
}  // namespace litegpu
