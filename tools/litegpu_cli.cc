// litegpu — command-line front end for the modeling library.
//
//   litegpu run <scenario.json>... [--json]     execute scenario file(s)
//   litegpu fleet <scenario.json> [--json]      fleet-compare catalog:
//                                               knee-vs-knee $/Mtoken at SLO
//   litegpu fig3a [--ideal-capacity]            regenerate Figure 3a
//   litegpu fig3b [--ideal-capacity]            regenerate Figure 3b
//   litegpu search --model M --gpu G [...]      best config for one pair
//   litegpu design --model M                    Table-1 cluster comparison
//   litegpu serve [--model M --gpu G --load X]  end-to-end serving simulation
//                 [--classes mix.json]          multi-tenant request classes
//                 [--arrival proc.json]         time-varying arrival process
//                 [--autoscaler policy.json]    mid-horizon pool autoscaling
//                 [--faults faults.json]        failure injection + blast radius
//                 [--shards N]                  split the horizon into N parallel
//                                               sub-horizon replications
//   litegpu sweep [--loads lo:hi:step]          serving sim over a load grid
//   litegpu mcsim [--spares N] [--trials N]     Monte-Carlo availability
//   litegpu yield [--d0 X] [--area A]           Section-2 silicon economics
//   litegpu derive --split N [--mem X] [--net X] [--clock X]
//                                               custom Lite-GPU + feasibility
//   litegpu list                                catalog contents
//
// Common flags: --prompt N --output N --ttft S --tbt S --kv-ideal
//               --threads N (sweep workers; 0 = all cores, 1 = serial)
//               --json (structured report on stdout)
//
// Every subcommand builds a Scenario and executes it through the Runner
// (src/core/scenario.h, src/core/runner.h); `run` loads the same Scenario
// from a JSON file instead. Unknown flags are rejected with a hint.

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/runner.h"
#include "src/core/scenario.h"
#include "src/hw/catalog.h"
#include "src/util/flags.h"
#include "src/util/json.h"
#include "src/util/units.h"

namespace litegpu {
namespace {

constexpr int kUsageError = 64;

// Flags shared by the perf studies (search/fig3*/design).
const std::vector<std::string> kWorkloadFlags = {"prompt", "output", "ttft", "tbt",
                                                 "ideal-capacity", "kv-ideal", "max-batch"};
const std::vector<std::string> kCommonFlags = {"threads", "json"};

std::vector<std::string> AllowedFlags(std::vector<std::string> own, bool workload = true) {
  own.insert(own.end(), kCommonFlags.begin(), kCommonFlags.end());
  if (workload) {
    own.insert(own.end(), kWorkloadFlags.begin(), kWorkloadFlags.end());
  }
  return own;
}

// Returns nonzero exit code on unknown flags, else 0.
int CheckFlags(const Flags& flags, const std::vector<std::string>& allowed) {
  std::string problem = flags.UnknownFlagCheck(allowed);
  if (!problem.empty()) {
    std::fprintf(stderr, "litegpu: %s\n", problem.c_str());
    return kUsageError;
  }
  return 0;
}

void ApplyWorkloadFlags(const Flags& flags, ScenarioBuilder& builder) {
  builder.PromptTokens(flags.GetInt("prompt", 1500))
      .OutputTokens(flags.GetInt("output", 256))
      .TtftSlo(flags.GetDouble("ttft", 1.0))
      .TbtSlo(flags.GetDouble("tbt", 0.050))
      .EnforceMemoryCapacity(!flags.GetBool("ideal-capacity", false))
      .MaxBatch(flags.GetInt("max-batch", 65536))
      .Threads(flags.GetInt("threads", 0));
  if (flags.GetBool("kv-ideal", false)) {
    builder.KvPolicy(KvShardPolicy::kIdealShard);
  }
}

// Runs one built scenario and prints the report; shared exit-code policy.
int Execute(const ScenarioBuilder& builder, const Flags& flags) {
  std::string error;
  auto scenario = builder.Build(&error);
  if (!scenario) {
    std::fprintf(stderr, "litegpu: %s\n", error.c_str());
    return 1;
  }
  RunReport report = Runner().Run(*scenario);
  if (flags.GetBool("json", false)) {
    std::printf("%s\n", report.ToJson().Dump().c_str());
  } else {
    std::printf("%s", report.ToText().c_str());
  }
  if (!report.ok) {
    std::fprintf(stderr, "litegpu: %s\n", report.error.c_str());
    return 1;
  }
  // derive keeps its historical exit contract: 2 when the part is
  // shoreline-infeasible (scripts branch on it).
  if (report.study == StudyKind::kDerive &&
      !std::get<DeriveStudyReport>(report.payload).result.shoreline_feasible) {
    return 2;
  }
  return 0;
}

int RunScenarioFiles(const Flags& flags) {
  if (int rc = CheckFlags(flags, AllowedFlags({}, /*workload=*/false))) {
    return rc;
  }
  std::vector<std::string> files(flags.positionals().begin() + 1,
                                 flags.positionals().end());
  if (files.empty()) {
    std::fprintf(stderr, "usage: litegpu run <scenario.json>... [--json] [--threads N]\n");
    return kUsageError;
  }
  std::vector<Scenario> scenarios;
  for (const std::string& path : files) {
    std::string error;
    auto loaded = LoadScenarioFile(path, &error);
    if (!loaded) {
      std::fprintf(stderr, "litegpu: %s: %s\n", path.c_str(), error.c_str());
      return 1;
    }
    scenarios.insert(scenarios.end(), loaded->begin(), loaded->end());
  }

  std::vector<RunReport> reports;
  if (scenarios.size() == 1) {
    Scenario only = scenarios.front();
    if (flags.Has("threads")) {
      only.exec.threads = flags.GetInt("threads", 0);
    }
    reports.push_back(Runner().Run(only));
  } else {
    ExecPolicy exec;
    exec.threads = flags.GetInt("threads", 0);
    reports = RunScenarios(scenarios, exec);
  }

  bool all_ok = true;
  if (flags.GetBool("json", false)) {
    if (reports.size() == 1) {
      std::printf("%s\n", reports.front().ToJson().Dump().c_str());
    } else {
      Json batch = Json::Array();
      for (const auto& report : reports) {
        batch.Append(report.ToJson());
      }
      std::printf("%s\n", batch.Dump().c_str());
    }
  } else {
    for (const auto& report : reports) {
      std::printf("%s\n", report.ToText().c_str());
    }
  }
  for (const auto& report : reports) {
    if (!report.ok) {
      std::fprintf(stderr, "litegpu: scenario '%s': %s\n", report.scenario_name.c_str(),
                   report.error.c_str());
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}

// `litegpu fleet <scenario.json>`: run's loader restricted to fleet-compare
// scenarios — the catalog shape (candidates, grids, economics knobs) only
// makes sense declaratively, so the subcommand takes a file, not flags.
int RunFleet(const Flags& flags) {
  if (int rc = CheckFlags(flags, AllowedFlags({}, /*workload=*/false))) {
    return rc;
  }
  std::vector<std::string> files(flags.positionals().begin() + 1,
                                 flags.positionals().end());
  if (files.size() != 1) {
    std::fprintf(stderr, "usage: litegpu fleet <scenario.json> [--json] [--threads N]\n");
    return kUsageError;
  }
  std::string error;
  auto loaded = LoadScenarioFile(files.front(), &error);
  if (!loaded) {
    std::fprintf(stderr, "litegpu: %s: %s\n", files.front().c_str(), error.c_str());
    return 1;
  }
  for (const Scenario& s : *loaded) {
    if (s.study != StudyKind::kFleetCompare) {
      std::fprintf(stderr,
                   "litegpu: %s: scenario '%s' is a %s study, not fleet-compare "
                   "(use `litegpu run`)\n",
                   files.front().c_str(), s.name.c_str(), ToString(s.study).c_str());
      return kUsageError;
    }
  }
  bool all_ok = true;
  Json batch = Json::Array();
  for (Scenario s : *loaded) {
    if (flags.Has("threads")) {
      s.exec.threads = flags.GetInt("threads", 0);
    }
    RunReport report = Runner().Run(s);
    if (flags.GetBool("json", false)) {
      if (loaded->size() == 1) {
        std::printf("%s\n", report.ToJson().Dump().c_str());
      } else {
        batch.Append(report.ToJson());
      }
    } else {
      std::printf("%s", report.ToText().c_str());
    }
    if (!report.ok) {
      std::fprintf(stderr, "litegpu: scenario '%s': %s\n", report.scenario_name.c_str(),
                   report.error.c_str());
      all_ok = false;
    }
  }
  if (flags.GetBool("json", false) && loaded->size() > 1) {
    std::printf("%s\n", batch.Dump().c_str());
  }
  return all_ok ? 0 : 1;
}

int RunFig3(const Flags& flags, bool prefill) {
  if (int rc = CheckFlags(flags, AllowedFlags({"baseline"}))) {
    return rc;
  }
  ScenarioBuilder builder(prefill ? StudyKind::kFig3a : StudyKind::kFig3b);
  ApplyWorkloadFlags(flags, builder);
  builder.Baseline(flags.GetString("baseline", "H100"));
  return Execute(builder, flags);
}

int RunSearch(const Flags& flags) {
  if (int rc = CheckFlags(flags, AllowedFlags({"model", "gpu"}))) {
    return rc;
  }
  ScenarioBuilder builder(StudyKind::kSearch);
  ApplyWorkloadFlags(flags, builder);
  builder.Model(flags.GetString("model", "Llama3-70B"))
      .Gpu(flags.GetString("gpu", "H100"));
  return Execute(builder, flags);
}

int RunDesign(const Flags& flags) {
  if (int rc = CheckFlags(flags, AllowedFlags({"model", "hbm-cost", "price-multiplier",
                                               "amortization-years"}))) {
    return rc;
  }
  ScenarioBuilder builder(StudyKind::kDesign);
  ApplyWorkloadFlags(flags, builder);
  builder.Model(flags.GetString("model", "Llama3-70B"));
  DesignKnobs knobs;
  knobs.hbm_usd_per_gb = flags.GetDouble("hbm-cost", knobs.hbm_usd_per_gb);
  knobs.gpu_price_multiplier =
      flags.GetDouble("price-multiplier", knobs.gpu_price_multiplier);
  knobs.amortization_years =
      flags.GetDouble("amortization-years", knobs.amortization_years);
  builder.Design(knobs);
  return Execute(builder, flags);
}

// Loads a --classes file: a JSON array of request-class objects (or
// {"classes": [...]}) defining a multi-tenant mix. Returns false (with the
// message printed) on parse errors.
bool LoadClassesFlag(const Flags& flags, std::vector<RequestClass>& out) {
  if (!flags.Has("classes")) {
    return true;
  }
  std::string path = flags.GetString("classes");
  std::string error;
  auto json = Json::ParseFile(path, &error);
  if (!json) {
    std::fprintf(stderr, "litegpu: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  auto classes = ParseRequestClasses(*json, &error);
  if (!classes) {
    std::fprintf(stderr, "litegpu: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  out = std::move(*classes);
  return true;
}

// Loads an --arrival file (an arrival-process object, bare or wrapped in
// {"arrival": ...}) and validates it before the run. Returns false (with
// the message printed) on parse or validation errors.
bool LoadArrivalFlag(const Flags& flags, ArrivalProcess& out) {
  if (!flags.Has("arrival")) {
    return true;
  }
  std::string path = flags.GetString("arrival");
  std::string error;
  auto json = Json::ParseFile(path, &error);
  std::optional<ArrivalProcess> arrival;
  if (json) {
    arrival = ParseArrivalProcess(*json, &error);
  }
  if (arrival) {
    error = ValidateArrivalProcess(*arrival, "arrival file");
  }
  if (!error.empty()) {
    std::fprintf(stderr, "litegpu: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  out = std::move(*arrival);
  return true;
}

// Loads an --autoscaler file (an autoscaler-knobs object, bare or wrapped
// in {"autoscaler": ...}) and validates it before the run. Returns false
// (with the message printed) on parse or validation errors.
bool LoadAutoscalerFlag(const Flags& flags, AutoscalerKnobs& out) {
  if (!flags.Has("autoscaler")) {
    return true;
  }
  std::string path = flags.GetString("autoscaler");
  std::string error;
  auto json = Json::ParseFile(path, &error);
  std::optional<AutoscalerKnobs> knobs;
  if (json) {
    knobs = ParseAutoscalerKnobs(*json, &error);
  }
  if (knobs) {
    error = ValidateAutoscalerKnobs(*knobs, "autoscaler file");
  }
  if (!error.empty()) {
    std::fprintf(stderr, "litegpu: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  out = std::move(*knobs);
  return true;
}

// Loads a --faults file (a fault-knobs object, bare or wrapped in
// {"faults": ...}) and validates it before the run. Returns false (with the
// message printed) on parse or validation errors.
bool LoadFaultsFlag(const Flags& flags, FaultKnobs& out) {
  if (!flags.Has("faults")) {
    return true;
  }
  std::string path = flags.GetString("faults");
  std::string error;
  auto json = Json::ParseFile(path, &error);
  std::optional<FaultKnobs> knobs;
  if (json) {
    knobs = ParseFaultKnobs(*json, &error);
  }
  if (knobs) {
    error = ValidateFaultKnobs(*knobs, "faults file");
  }
  if (!error.empty()) {
    std::fprintf(stderr, "litegpu: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  out = std::move(*knobs);
  return true;
}

int RunServe(const Flags& flags) {
  if (int rc = CheckFlags(
          flags, AllowedFlags({"model", "gpu", "load", "rate", "horizon",
                               "prefill-instances", "decode-instances", "prompt-sigma",
                               "output-sigma", "seed", "classes", "arrival",
                               "autoscaler", "faults", "shards"}))) {
    return rc;
  }
  ScenarioBuilder builder(StudyKind::kServe);
  ApplyWorkloadFlags(flags, builder);
  builder.Model(flags.GetString("model", "Llama3-70B"))
      .Gpu(flags.GetString("gpu", "H100"));
  ServeKnobs knobs;
  knobs.load = flags.GetDouble("load", knobs.load);
  knobs.arrival_rate_per_s = flags.GetDouble("rate", knobs.arrival_rate_per_s);
  knobs.horizon_s = flags.GetDouble("horizon", knobs.horizon_s);
  knobs.prefill_instances = flags.GetInt("prefill-instances", knobs.prefill_instances);
  knobs.decode_instances = flags.GetInt("decode-instances", knobs.decode_instances);
  knobs.prompt_sigma = flags.GetDouble("prompt-sigma", knobs.prompt_sigma);
  knobs.output_sigma = flags.GetDouble("output-sigma", knobs.output_sigma);
  knobs.seed = flags.GetUint64("seed", knobs.seed);
  knobs.shards = flags.GetInt("shards", knobs.shards);
  if (!LoadClassesFlag(flags, knobs.classes) || !LoadArrivalFlag(flags, knobs.arrival) ||
      !LoadAutoscalerFlag(flags, knobs.autoscaler) ||
      !LoadFaultsFlag(flags, knobs.faults)) {
    return kUsageError;
  }
  builder.Serve(knobs);
  return Execute(builder, flags);
}

// Parses a grid spec: "lo:hi:step" (inclusive range) or a comma-separated
// list of values. Returns false on malformed input.
bool ParseGridSpec(const std::string& spec, ServeSweepKnobs& knobs, bool as_rates,
                   std::string* error) {
  auto parse_double = [](const std::string& text, double& out) {
    char* end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end != text.c_str() && *end == '\0';
  };
  std::vector<double>& list = as_rates ? knobs.rates : knobs.loads;
  if (spec.find(':') != std::string::npos) {
    // lo:hi:step — for loads it maps onto the knobs' range fields; rate
    // ranges expand to an explicit list here.
    double parts[3];
    size_t start = 0;
    for (int i = 0; i < 3; ++i) {
      size_t colon = spec.find(':', start);
      bool last = i == 2;
      if (last != (colon == std::string::npos) ||
          !parse_double(spec.substr(start, last ? std::string::npos : colon - start),
                        parts[i])) {
        *error = "malformed grid spec '" + spec + "' (expected lo:hi:step)";
        return false;
      }
      start = colon + 1;
    }
    std::vector<double> expanded = ExpandGridRange(parts[0], parts[1], parts[2]);
    if (expanded.empty()) {
      *error = "grid range '" + spec +
               "' needs finite hi >= lo, step > 0, and at most 1e6 points";
      return false;
    }
    if (as_rates) {
      list.insert(list.end(), expanded.begin(), expanded.end());
    } else {
      knobs.load_lo = parts[0];
      knobs.load_hi = parts[1];
      knobs.load_step = parts[2];
    }
    return true;
  }
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    std::string token =
        spec.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    double value = 0.0;
    if (!parse_double(token, value)) {
      *error = "malformed grid value '" + token + "' in '" + spec + "'";
      return false;
    }
    list.push_back(value);
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return true;
}

int RunSweep(const Flags& flags) {
  if (int rc = CheckFlags(
          flags, AllowedFlags({"model", "gpu", "loads", "rates", "horizon",
                               "prefill-instances", "decode-instances", "prompt-sigma",
                               "output-sigma", "seed", "classes", "arrival",
                               "autoscaler", "faults", "shards"}))) {
    return rc;
  }
  ScenarioBuilder builder(StudyKind::kServeSweep);
  ApplyWorkloadFlags(flags, builder);
  builder.Model(flags.GetString("model", "Llama3-70B"))
      .Gpu(flags.GetString("gpu", "H100"));
  ServeSweepKnobs knobs;
  std::string error;
  if (flags.Has("loads") &&
      !ParseGridSpec(flags.GetString("loads"), knobs, /*as_rates=*/false, &error)) {
    std::fprintf(stderr, "litegpu: %s\n", error.c_str());
    return kUsageError;
  }
  if (flags.Has("rates") &&
      !ParseGridSpec(flags.GetString("rates"), knobs, /*as_rates=*/true, &error)) {
    std::fprintf(stderr, "litegpu: %s\n", error.c_str());
    return kUsageError;
  }
  knobs.horizon_s = flags.GetDouble("horizon", knobs.horizon_s);
  knobs.prefill_instances = flags.GetInt("prefill-instances", knobs.prefill_instances);
  knobs.decode_instances = flags.GetInt("decode-instances", knobs.decode_instances);
  knobs.prompt_sigma = flags.GetDouble("prompt-sigma", knobs.prompt_sigma);
  knobs.output_sigma = flags.GetDouble("output-sigma", knobs.output_sigma);
  knobs.seed = flags.GetUint64("seed", knobs.seed);
  knobs.shards = flags.GetInt("shards", knobs.shards);
  if (!LoadClassesFlag(flags, knobs.classes) || !LoadArrivalFlag(flags, knobs.arrival) ||
      !LoadAutoscalerFlag(flags, knobs.autoscaler) ||
      !LoadFaultsFlag(flags, knobs.faults)) {
    return kUsageError;
  }
  builder.ServeSweep(knobs);
  return Execute(builder, flags);
}

int RunMcSim(const Flags& flags) {
  if (int rc = CheckFlags(flags, AllowedFlags({"gpu", "gpus-per-instance", "instances",
                                               "spares", "years", "seed", "trials"},
                                              /*workload=*/false))) {
    return rc;
  }
  ScenarioBuilder builder(StudyKind::kMcSim);
  builder.Gpu(flags.GetString("gpu", "H100")).Threads(flags.GetInt("threads", 0));
  McSimKnobs knobs;
  knobs.gpus_per_instance = flags.GetInt("gpus-per-instance", knobs.gpus_per_instance);
  knobs.num_instances = flags.GetInt("instances", knobs.num_instances);
  knobs.num_spares = flags.GetInt("spares", knobs.num_spares);
  knobs.sim_years = flags.GetDouble("years", knobs.sim_years);
  knobs.seed = flags.GetUint64("seed", knobs.seed);
  knobs.num_trials = flags.GetInt("trials", knobs.num_trials);
  builder.McSim(knobs);
  return Execute(builder, flags);
}

int RunYield(const Flags& flags) {
  if (int rc =
          CheckFlags(flags, AllowedFlags({"d0", "area", "split", "cluster-alpha"},
                                         /*workload=*/false))) {
    return rc;
  }
  ScenarioBuilder builder(StudyKind::kYield);
  YieldKnobs knobs;
  knobs.defect_density_per_cm2 = flags.GetDouble("d0", knobs.defect_density_per_cm2);
  knobs.die_area_mm2 = flags.GetDouble("area", knobs.die_area_mm2);
  knobs.split = flags.GetInt("split", knobs.split);
  knobs.cluster_alpha = flags.GetDouble("cluster-alpha", knobs.cluster_alpha);
  builder.Yield(knobs);
  return Execute(builder, flags);
}

int RunDerive(const Flags& flags) {
  if (int rc = CheckFlags(flags, AllowedFlags({"base", "split", "mem", "net", "clock"},
                                              /*workload=*/false))) {
    return rc;
  }
  ScenarioBuilder builder(StudyKind::kDerive);
  DeriveKnobs knobs;
  knobs.base_gpu = flags.GetString("base", knobs.base_gpu);
  knobs.split = flags.GetInt("split", knobs.split);
  knobs.mem_bw_multiplier = flags.GetDouble("mem", knobs.mem_bw_multiplier);
  knobs.net_bw_multiplier = flags.GetDouble("net", knobs.net_bw_multiplier);
  knobs.overclock = flags.GetDouble("clock", knobs.overclock);
  builder.Derive(knobs);
  return Execute(builder, flags);
}

int RunList(const Flags& flags) {
  if (int rc = CheckFlags(flags, {"json"})) {
    return rc;
  }
  if (flags.GetBool("json", false)) {
    Json gpus = Json::Array();
    for (const auto& g : Table1Configs()) {
      Json j = Json::Object();
      j.Set("name", g.name)
          .Set("flops", g.flops)
          .Set("mem_bw_bytes_per_s", g.mem_bw_bytes_per_s)
          .Set("net_bw_bytes_per_s", g.net_bw_bytes_per_s)
          .Set("max_gpus", g.max_gpus);
      gpus.Append(std::move(j));
    }
    Json models = Json::Array();
    for (const auto& m : {Llama3_8B(), Llama3_70B(), Gpt3_175B(), Llama3_405B()}) {
      Json j = Json::Object();
      j.Set("name", m.name)
          .Set("num_layers", m.num_layers)
          .Set("d_model", m.d_model)
          .Set("num_heads", m.num_heads)
          .Set("num_kv_heads", m.num_kv_heads);
      models.Append(std::move(j));
    }
    Json j = Json::Object();
    j.Set("gpus", std::move(gpus)).Set("models", std::move(models));
    std::printf("%s\n", j.Dump().c_str());
    return 0;
  }
  std::printf("GPUs:\n");
  for (const auto& g : Table1Configs()) {
    std::printf("  %-18s %4.0f TFLOPS %5.0f GB/s mem %6.1f GB/s net, max %d\n",
                g.name.c_str(), g.flops / kTFLOPS, g.mem_bw_bytes_per_s / kGBps,
                g.net_bw_bytes_per_s / kGBps, g.max_gpus);
  }
  for (const auto& g : HistoricalGenerations()) {
    std::printf("  %-18s (%d)\n", g.name.c_str(), g.year);
  }
  std::printf("Models:\n");
  for (const auto& m : {Llama3_8B(), Llama3_70B(), Gpt3_175B(), Llama3_405B()}) {
    std::printf("  %-12s %3d layers, d_model %5d, %3d heads / %2d KV heads\n",
                m.name.c_str(), m.num_layers, m.d_model, m.num_heads, m.num_kv_heads);
  }
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: litegpu <run|fleet|fig3a|fig3b|search|design|serve|sweep|mcsim|yield|derive|"
      "list> [flags]\n"
      "  run:     <scenario.json>...  execute declarative scenario file(s)\n"
      "  fleet:   <scenario.json>     fleet-compare catalog: knee-vs-knee $/Mtoken\n"
      "  search:  --model M --gpu G [--prompt N --output N --ttft S --tbt S]\n"
      "  serve:   [--model M --gpu G --load X --rate R --horizon S\n"
      "            --prefill-instances N --decode-instances N\n"
      "            --prompt-sigma X --output-sigma X --seed N --classes mix.json\n"
      "            --arrival proc.json --autoscaler policy.json --faults f.json\n"
      "            --shards N]\n"
      "  sweep:   [--model M --gpu G --loads lo:hi:step|a,b,c --rates lo:hi:step|a,b,c\n"
      "            --horizon S --prefill-instances N --decode-instances N\n"
      "            --prompt-sigma X --output-sigma X --seed N --classes mix.json\n"
      "            --arrival proc.json --autoscaler policy.json --faults f.json\n"
      "            --shards N]\n"
      "  design:  --model M [--hbm-cost X --price-multiplier X --amortization-years X]\n"
      "  mcsim:   [--gpu G --gpus-per-instance N --instances N --spares N\n"
      "            --years X --seed N --trials N]\n"
      "  yield:   [--d0 X --area A --split N --cluster-alpha X]\n"
      "  derive:  [--base G --split N --mem X --net X --clock X]\n"
      "  fig3*:   [--ideal-capacity] [--kv-ideal] [--baseline G]\n"
      "  common:  [--threads N]  sweep workers (0 = all cores, 1 = serial)\n"
      "           [--json]      structured report on stdout\n");
  return kUsageError;
}

int Main(int argc, const char* const* argv) {
  // Declared boolean switches never swallow a following positional
  // (`litegpu run --json scenario.json` keeps the file positional).
  Flags flags = Flags::Parse(argc, argv, {"json", "kv-ideal", "ideal-capacity"});
  std::string cmd = flags.Subcommand();
  if (cmd == "run") {
    return RunScenarioFiles(flags);
  }
  if (cmd == "fleet") {
    return RunFleet(flags);
  }
  if (cmd == "fig3a") {
    return RunFig3(flags, /*prefill=*/true);
  }
  if (cmd == "fig3b") {
    return RunFig3(flags, /*prefill=*/false);
  }
  if (cmd == "search") {
    return RunSearch(flags);
  }
  if (cmd == "design") {
    return RunDesign(flags);
  }
  if (cmd == "serve") {
    return RunServe(flags);
  }
  if (cmd == "sweep") {
    return RunSweep(flags);
  }
  if (cmd == "mcsim") {
    return RunMcSim(flags);
  }
  if (cmd == "yield") {
    return RunYield(flags);
  }
  if (cmd == "derive") {
    return RunDerive(flags);
  }
  if (cmd == "list") {
    return RunList(flags);
  }
  return Usage();
}

}  // namespace
}  // namespace litegpu

int main(int argc, char** argv) { return litegpu::Main(argc, argv); }
