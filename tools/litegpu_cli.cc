// litegpu — command-line front end for the modeling library.
//
//   litegpu fig3a [--ideal-capacity]            regenerate Figure 3a
//   litegpu fig3b [--ideal-capacity]            regenerate Figure 3b
//   litegpu search --model M --gpu G [...]      best config for one pair
//   litegpu design --model M                    Table-1 cluster comparison
//   litegpu yield [--d0 X] [--area A]           Section-2 silicon economics
//   litegpu derive --split N [--mem X] [--net X] [--clock X]
//                                               custom Lite-GPU + feasibility
//   litegpu list                                catalog contents
//
// Common flags: --prompt N --output N --ttft S --tbt S --kv-ideal
//               --threads N (sweep workers; 0 = all cores, 1 = serial)

#include <cstdio>
#include <string>

#include "src/core/designer.h"
#include "src/core/experiments.h"
#include "src/core/search.h"
#include "src/hw/catalog.h"
#include "src/hw/lite_derive.h"
#include "src/silicon/cost.h"
#include "src/silicon/wafer.h"
#include "src/silicon/yield.h"
#include "src/util/flags.h"
#include "src/util/format.h"
#include "src/util/table.h"
#include "src/util/units.h"

namespace litegpu {
namespace {

SearchOptions OptionsFromFlags(const Flags& flags) {
  SearchOptions options;
  options.workload.prompt_tokens = flags.GetInt("prompt", 1500);
  options.workload.output_tokens = flags.GetInt("output", 256);
  options.workload.ttft_slo_s = flags.GetDouble("ttft", 1.0);
  options.workload.tbt_slo_s = flags.GetDouble("tbt", 0.050);
  options.workload.enforce_memory_capacity = !flags.GetBool("ideal-capacity", false);
  if (flags.GetBool("kv-ideal", false)) {
    options.kv_policy = KvShardPolicy::kIdealShard;
  }
  // 0 = hardware concurrency; 1 = serial. Identical results either way.
  options.threads = flags.GetInt("threads", 0);
  return options;
}

int RunFig3(const Flags& flags, bool prefill) {
  SearchOptions options = OptionsFromFlags(flags);
  if (prefill) {
    auto entries = RunPrefillStudy(CaseStudyModels(),
                                   {H100(), Lite(), LiteNetBw(), LiteNetBwFlops()}, options);
    std::printf("%s", Fig3ToText(entries, "Figure 3a: prefill").c_str());
  } else {
    auto entries = RunDecodeStudy(CaseStudyModels(),
                                  {H100(), Lite(), LiteMemBw(), LiteMemBwNetBw()}, options);
    std::printf("%s", Fig3ToText(entries, "Figure 3b: decode").c_str());
  }
  return 0;
}

int RunSearch(const Flags& flags) {
  auto model = FindModel(flags.GetString("model", "Llama3-70B"));
  auto gpu = FindGpu(flags.GetString("gpu", "H100"));
  if (!model || !gpu) {
    std::fprintf(stderr, "unknown --model or --gpu (try `litegpu list`)\n");
    return 1;
  }
  SearchOptions options = OptionsFromFlags(flags);
  DecodeSearchResult decode = SearchDecode(*model, *gpu, options);
  PrefillSearchResult prefill = SearchPrefill(*model, *gpu, options);
  std::printf("%s on %s:\n", model->name.c_str(), gpu->name.c_str());
  if (prefill.found) {
    std::printf("  prefill: TP=%d batch=%d TTFT=%s -> %.2f tokens/s/SM\n",
                prefill.best.tp_degree, prefill.best.batch,
                HumanTime(prefill.best.result.ttft_s).c_str(),
                prefill.best.result.tokens_per_s_per_sm);
  } else {
    std::printf("  prefill: no feasible configuration\n");
  }
  if (decode.found) {
    std::printf("  decode:  TP=%d batch=%d TBT=%s -> %.2f tokens/s/SM\n",
                decode.best.tp_degree, decode.best.batch,
                HumanTime(decode.best.result.tbt_s).c_str(),
                decode.best.result.tokens_per_s_per_sm);
    std::printf("  per-degree frontier:\n");
    for (const auto& p : decode.per_degree) {
      std::printf("    TP=%-3d batch=%-5d TBT=%-10s %.2f tokens/s/SM\n", p.tp_degree,
                  p.batch, HumanTime(p.result.tbt_s).c_str(),
                  p.result.tokens_per_s_per_sm);
    }
  } else {
    std::printf("  decode:  no feasible configuration\n");
  }
  return 0;
}

int RunDesign(const Flags& flags) {
  auto model = FindModel(flags.GetString("model", "Llama3-70B"));
  if (!model) {
    std::fprintf(stderr, "unknown --model\n");
    return 1;
  }
  DesignInputs inputs;
  inputs.model = *model;
  inputs.search = OptionsFromFlags(flags);
  inputs.threads = inputs.search.threads;
  auto reports = CompareClusters(Table1Configs(), inputs);
  std::printf("%s", ClusterComparisonToText(reports).c_str());
  return 0;
}

int RunYield(const Flags& flags) {
  WaferSpec wafer;
  DefectSpec defects;
  defects.density_per_cm2 = flags.GetDouble("d0", 0.1);
  double area = flags.GetDouble("area", 814.0);
  int split = flags.GetInt("split", 4);
  Table table({"Model", "Yield(full)", "Yield(1/" + std::to_string(split) + ")", "Gain",
               "KGD cost ratio"});
  for (auto model : {YieldModel::kPoisson, YieldModel::kMurphy, YieldModel::kSeeds,
                     YieldModel::kNegativeBinomial}) {
    double big = KnownGoodDieCost(wafer, model, defects, area);
    double small = KnownGoodDieCost(wafer, model, defects, area / split);
    table.AddRow({ToString(model), FormatDouble(DieYield(model, defects, area), 3),
                  FormatDouble(DieYield(model, defects, area / split), 3),
                  FormatDouble(YieldGainFromSplit(model, defects, area, split), 2) + "x",
                  big > 0.0 ? FormatDouble(split * small / big, 3) : "-"});
  }
  std::printf("die %.1f mm^2, d0 %.2f/cm^2, split %d\n%s", area, defects.density_per_cm2,
              split, table.ToText().c_str());
  return 0;
}

int RunDerive(const Flags& flags) {
  LiteDeriveOptions options;
  options.split = flags.GetInt("split", 4);
  options.mem_bw_multiplier = flags.GetDouble("mem", 1.0);
  options.net_bw_multiplier = flags.GetDouble("net", 1.0);
  options.overclock = flags.GetDouble("clock", 1.0);
  options.max_gpus_multiplier = options.split;
  auto base = FindGpu(flags.GetString("base", "H100"));
  if (!base) {
    std::fprintf(stderr, "unknown --base GPU\n");
    return 1;
  }
  LiteDeriveResult result = DeriveLite(*base, options);
  std::printf("%s\n", result.ToString().c_str());
  return result.shoreline_feasible ? 0 : 2;
}

int RunList() {
  std::printf("GPUs:\n");
  for (const auto& g : Table1Configs()) {
    std::printf("  %-18s %4.0f TFLOPS %5.0f GB/s mem %6.1f GB/s net, max %d\n",
                g.name.c_str(), g.flops / kTFLOPS, g.mem_bw_bytes_per_s / kGBps,
                g.net_bw_bytes_per_s / kGBps, g.max_gpus);
  }
  for (const auto& g : HistoricalGenerations()) {
    std::printf("  %-18s (%d)\n", g.name.c_str(), g.year);
  }
  std::printf("Models:\n");
  for (const auto& m : {Llama3_8B(), Llama3_70B(), Gpt3_175B(), Llama3_405B()}) {
    std::printf("  %-12s %3d layers, d_model %5d, %3d heads / %2d KV heads\n",
                m.name.c_str(), m.num_layers, m.d_model, m.num_heads, m.num_kv_heads);
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: litegpu <fig3a|fig3b|search|design|yield|derive|list> [flags]\n"
               "  search:  --model M --gpu G [--prompt N --output N --ttft S --tbt S]\n"
               "  design:  --model M\n"
               "  yield:   [--d0 X --area A --split N]\n"
               "  derive:  [--base G --split N --mem X --net X --clock X]\n"
               "  fig3*:   [--ideal-capacity] [--kv-ideal]\n"
               "  common:  [--threads N]  sweep workers (0 = all cores, 1 = serial)\n");
  return 64;
}

int Main(int argc, const char* const* argv) {
  Flags flags = Flags::Parse(argc, argv);
  std::string cmd = flags.Subcommand();
  if (cmd == "fig3a") {
    return RunFig3(flags, /*prefill=*/true);
  }
  if (cmd == "fig3b") {
    return RunFig3(flags, /*prefill=*/false);
  }
  if (cmd == "search") {
    return RunSearch(flags);
  }
  if (cmd == "design") {
    return RunDesign(flags);
  }
  if (cmd == "yield") {
    return RunYield(flags);
  }
  if (cmd == "derive") {
    return RunDerive(flags);
  }
  if (cmd == "list") {
    return RunList();
  }
  return Usage();
}

}  // namespace
}  // namespace litegpu

int main(int argc, char** argv) { return litegpu::Main(argc, argv); }
