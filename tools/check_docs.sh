#!/usr/bin/env bash
# CI docs checker: fails when the documentation drifts from the code.
#
#   1. docs/{scenarios,reports,architecture}.md must exist.
#   2. Every examples/scenarios/*.json file must be mentioned in
#      docs/scenarios.md (an example nobody documents rots).
#   3. Every study kind must appear (in backticks) in docs/scenarios.md
#      and docs/reports.md.
#   4. Every knob field declared in src/core/scenario.h (the Scenario
#      struct, every *Knobs struct, RequestClass), every WorkloadParams
#      field, and every ArrivalProcess field must appear in backticks in
#      docs/scenarios.md — adding a knob without documenting it fails CI.
#   5. Every ScaleEvent field (the autoscaler report rows) must appear in
#      backticks in docs/reports.md.
#   6. docs/architecture.md's "Simulator core" section must track the fast
#      core: while src/serve/event_queue.h exists, the calendar queue, the
#      SoA request layout, and the shard merge/substream entry points must
#      all be documented there.
#
# Grep-based on purpose: no build needed, runs in milliseconds, and keyed
# off the same headers the parser is generated from. The reverse direction
# (everything the docs promise actually parses) is covered by
# scenario_test's round trip over the example files.

set -u
cd "$(dirname "$0")/.."

fail=0
err() {
  echo "check_docs: $*" >&2
  fail=1
}

SCENARIOS_DOC=docs/scenarios.md
REPORTS_DOC=docs/reports.md

for doc in "$SCENARIOS_DOC" "$REPORTS_DOC" docs/architecture.md; do
  [ -f "$doc" ] || err "missing $doc"
done
[ "$fail" -eq 0 ] || exit 1

# --- every checked-in example scenario is documented ---
for f in examples/scenarios/*.json; do
  base=$(basename "$f")
  grep -q "$base" "$SCENARIOS_DOC" ||
    err "example scenario '$base' is not mentioned in $SCENARIOS_DOC"
done

# --- every study kind is documented in both references ---
# The kind names come from ToString(StudyKind) in src/core/scenario.cc, so
# adding a StudyKind without documenting it fails here automatically.
kinds=$(awk '
  /^std::string ToString\(StudyKind kind\)/ { c = 1 }
  c && /return "/ {
    line = $0
    sub(/.*return "/, "", line)
    sub(/".*/, "", line)
    if (line != "unknown") print line
  }
  c && /^}/ { c = 0 }
' src/core/scenario.cc)
[ -n "$kinds" ] || err "could not extract study kinds from src/core/scenario.cc"
for kind in $kinds; do
  grep -q "\`$kind\`" "$SCENARIOS_DOC" ||
    err "study kind '$kind' is not documented in $SCENARIOS_DOC"
  grep -q "$kind" "$REPORTS_DOC" ||
    err "study kind '$kind' is not documented in $REPORTS_DOC"
done

# --- every knob field is documented ---
# Extract field names from the knob structs: lines inside the struct body,
# two-space indented, not a method (no parenthesis), last identifier before
# '=' or ';'.
extract_fields() { # extract_fields <header> <struct-name-regex>
  # Matches plain and derived structs ("struct ServeKnobs : ServeCommonKnobs {").
  awk -v structs="$2" '
    $0 ~ "^struct (" structs ")( :[^{]*)? \\{" { c = 1; next }
    c && /^};/ { c = 0 }
    c && /^  [A-Za-z_]/ && $0 !~ /\(/ { print }
  ' "$1" |
    sed -e 's://.*::' -e 's/=.*//' -e 's/;.*//' |
    awk 'NF { print $NF }' | sort -u
}

check_fields() { # check_fields <header> <struct-name-regex>
  for field in $(extract_fields "$1" "$2"); do
    grep -q "\`$field\`" "$SCENARIOS_DOC" ||
      err "knob field '$field' ($1) is not documented in $SCENARIOS_DOC"
  done
}

# The knob-struct list comes from the header itself (every `struct *Knobs`
# plus RequestClass and Scenario), so a new knob block can't dodge the
# checker by not being on a hardcoded list.
knob_structs=$(grep -oE '^struct [A-Za-z]+Knobs' src/core/scenario.h |
  awk '{ print $2 }' | paste -sd'|' -)
[ -n "$knob_structs" ] || err "could not extract knob structs from src/core/scenario.h"
check_fields src/core/scenario.h "RequestClass|FleetCandidate|$knob_structs|Scenario"
check_fields src/roofline/inference.h "WorkloadParams"
check_fields src/serve/workload.h "ArrivalProcess"

# --- every autoscaler report row field is documented ---
# ScaleEvent is what the report's autoscaler "events" array serializes, so
# each field must be named in docs/reports.md.
for field in $(extract_fields src/serve/simulator.h "ScaleEvent"); do
  grep -q "\`$field\`" "$REPORTS_DOC" ||
    err "scale event field '$field' (src/serve/simulator.h) is not documented in $REPORTS_DOC"
done

# --- every fault report field is documented ---
# FaultEvent rows fill the report's faults "events" array; the
# ServeFaultReport / ServeFaultPoolReport structs are the faults block
# itself. Same rule as ScaleEvent: each field must be named in
# docs/reports.md.
for field in $(extract_fields src/serve/faults.h "FaultEvent"); do
  grep -q "\`$field\`" "$REPORTS_DOC" ||
    err "fault event field '$field' (src/serve/faults.h) is not documented in $REPORTS_DOC"
done
for field in $(extract_fields src/core/runner.h "ServeFaultReport|ServeFaultPoolReport|ServeFaultDomainReport"); do
  grep -q "\`$field\`" "$REPORTS_DOC" ||
    err "fault report field '$field' (src/core/runner.h) is not documented in $REPORTS_DOC"
done
# Shed rows fill the report's "shed_events" array — same rule.
for field in $(extract_fields src/serve/faults.h "ShedEvent"); do
  grep -q "\`$field\`" "$REPORTS_DOC" ||
    err "shed event field '$field' (src/serve/faults.h) is not documented in $REPORTS_DOC"
done

# --- the fleet-compare report schema is documented ---
# FleetCompareReport (with its nested Candidate rows) is the fleet study's
# JSON surface; every field must be named in docs/reports.md. extract_fields
# only sees two-space top-level fields, so the nested struct gets its own
# pass here (2-or-4-space indent, skipping the nested `struct` line itself).
fleet_fields=$(awk '
  /^struct FleetCompareReport \{/ { c = 1 }
  c && /^\};/ { c = 0 }
  c && (/^  [A-Za-z_]/ || /^    [A-Za-z_]/) && $0 !~ /\(/ && $0 !~ /struct / { print }
' src/core/runner.h |
  sed -e 's://.*::' -e 's/=.*//' -e 's/;.*//' |
  awk 'NF { print $NF }' | sort -u)
[ -n "$fleet_fields" ] || err "could not extract FleetCompareReport fields from src/core/runner.h"
for field in $fleet_fields; do
  grep -q "\`$field\`" "$REPORTS_DOC" ||
    err "fleet report field '$field' (src/core/runner.h) is not documented in $REPORTS_DOC"
done

# --- the robustness-axis engine structs are documented ---
# FaultDomainConfig / DegradedStateConfig / SheddingPolicy are the resolved
# three-axis configuration the scenario knobs compile into; the architecture
# notes must name them (same contract as the simulator-core identifiers).
for ident in FaultDomainConfig DegradedStateConfig SheddingPolicy ShedEvent; do
  grep -rq "$ident" src/serve/faults.h ||
    err "robustness identifier '$ident' vanished from src/serve/faults.h — update check_docs.sh"
  grep -q "\`[^\`]*$ident" docs/architecture.md ||
    err "robustness identifier '$ident' is not documented in docs/architecture.md"
done

# --- the simulator-core architecture notes track the fast core ---
# Keyed off the code the same way as the knob checks: these identifiers are
# the fast core's public surface (src/serve/event_queue.h, workload.h,
# simulator.h), so renaming or removing one without updating the
# architecture notes fails here.
ARCH_DOC=docs/architecture.md
if [ -f src/serve/event_queue.h ]; then
  grep -q '^## Simulator core' "$ARCH_DOC" ||
    err "docs/architecture.md is missing the 'Simulator core' section"
  for ident in CalendarEventQueue RequestSoA MergeServeShardMetrics \
               ShardSubstreamSeed stream_ttft; do
    grep -rq "$ident" src/serve/*.h ||
      err "simulator-core identifier '$ident' vanished from src/serve — update check_docs.sh"
    # Qualified mentions count: `ShardSubstreamSeed(seed, i)` or
    # `ServeClusterConfig::stream_ttft` both document the identifier.
    grep -q "\`[^\`]*$ident" "$ARCH_DOC" ||
      err "simulator-core identifier '$ident' is not documented in $ARCH_DOC"
  done
fi

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED — update docs/scenarios.md (and reports.md) to match the code" >&2
  exit 1
fi
echo "check_docs: OK"
