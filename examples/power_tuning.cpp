// Fine-grained power management (paper Section 3, power management).
//
// Walks the DVFS model: efficiency vs frequency, the granularity advantage
// of per-Lite-GPU control on a realistic diurnal load, and the
// overclock-vs-more-GPUs decision for peak hours.

#include <cstdio>

#include "src/hw/catalog.h"
#include "src/power/cooling.h"
#include "src/power/dvfs.h"
#include "src/sched/power_sched.h"
#include "src/util/format.h"
#include "src/util/table.h"

using namespace litegpu;

int main() {
  std::printf("=== DVFS characteristics (Lite-GPU, 165 W nominal) ===\n\n");
  DvfsModel dvfs;
  dvfs.nominal_power_watts = Lite().tdp_watts;

  Table curve({"Frequency", "Power", "Rel. throughput", "Rel. efficiency"});
  for (double f : {0.4, 0.6, 0.8, 1.0, 1.1, 1.25}) {
    curve.AddRow({FormatDouble(f, 2), HumanPower(PowerAtFrequency(dvfs, f)),
                  FormatDouble(f, 2), FormatDouble(RelativeEfficiency(dvfs, f), 2)});
  }
  std::printf("%s\n", curve.ToText().c_str());

  std::printf("=== Granularity on a diurnal load (equal fleet capacity) ===\n\n");
  auto trace = DiurnalLoadTrace(96);
  for (double& l : trace) {
    l *= 0.45;  // a lightly-loaded fleet is where granularity shows
  }
  Table sched({"Fleet", "Policy", "Avg power", "kWh/day"});
  DvfsModel h100_dvfs;
  h100_dvfs.nominal_power_watts = H100().tdp_watts;
  for (PowerPolicy policy :
       {PowerPolicy::kAllDvfs, PowerPolicy::kPowerOffIdle, PowerPolicy::kHybrid}) {
    PowerScheduleResult h =
        RunPowerSchedule(H100(), 8, trace, policy, h100_dvfs, 1.0 / 8.0);
    PowerScheduleResult l = RunPowerSchedule(Lite(), 32, trace, policy, dvfs, 4.0 / 32.0);
    sched.AddRow({"H100 x8", ToString(policy), HumanPower(h.average_power_watts),
                  FormatDouble(h.energy_per_day_joules / 3.6e6, 1)});
    sched.AddRow({"Lite x32", ToString(policy), HumanPower(l.average_power_watts),
                  FormatDouble(l.energy_per_day_joules / 3.6e6, 1)});
  }
  std::printf("%s\n", sched.ToText().c_str());

  std::printf("=== Peak serving: overclock vs more devices ===\n\n");
  Table peak({"Peak demand", "Overclock 32 Lites", "Activate extra Lites", "Winner"});
  for (double fraction : {1.05, 1.10, 1.25, 1.50}) {
    PeakServingComparison cmp = ComparePeakServing(Lite(), 32, fraction, dvfs, 12.0);
    std::string oc = cmp.overclock_feasible ? HumanPower(cmp.overclock_power_watts)
                                            : "infeasible (cooling/DVFS)";
    std::string winner =
        !cmp.overclock_feasible ? "more devices"
        : (cmp.overclock_power_watts < cmp.extra_devices_power_watts ? "overclock"
                                                                     : "more devices");
    peak.AddRow({HumanPercent(fraction - 1.0, 0) + " above nominal", oc,
                 HumanPower(cmp.extra_devices_power_watts), winner});
  }
  std::printf("%s\n", peak.ToText().c_str());

  std::printf("Cooling headroom makes the overclock option real for Lite-GPUs only:\n");
  for (const auto& g : {H100(), Lite()}) {
    std::printf("  %-5s sustainable clock multiplier %.2fx (%s)\n", g.name.c_str(),
                SustainableClockMultiplier(g), ToString(RequiredRegime(g)).c_str());
  }
  return 0;
}
