// Network design-space exploration (paper Section 3, network management).
//
// Sweeps cluster size and bandwidth demand across the four topology options
// and three link technologies, printing the cost/power/flexibility frontier
// a Lite-GPU cluster architect would navigate.

#include <cstdio>

#include "src/hw/catalog.h"
#include "src/net/topology.h"
#include "src/util/format.h"
#include "src/util/table.h"
#include "src/util/units.h"

using namespace litegpu;

int main() {
  std::printf("=== Topology frontier for Lite-GPU clusters ===\n\n");

  for (int gpus : {32, 128, 512}) {
    FabricRequirements req;
    req.num_gpus = gpus;
    req.per_gpu_bw_bytes_per_s = Lite().net_bw_bytes_per_s;
    req.avg_utilization = 0.3;

    std::printf("--- %d Lite-GPUs at %.1f GB/s each ---\n", gpus,
                req.per_gpu_bw_bytes_per_s / kGBps);
    std::vector<TopologyReport> reports = {
        BuildDirectConnectGroups(req, 4, CpoLink()),
        BuildTorus2D(req, CpoLink()),
        BuildFlatSwitched(req, PacketSwitch(), CpoLink()),
        BuildLeafSpine(req, PacketSwitch(), CpoLink()),
        BuildFlatCircuitSwitched(req, CircuitSwitch(), CpoLink()),
    };
    std::printf("%s\n", TopologyComparisonToText(reports).c_str());
  }

  std::printf("=== What if the per-GPU bandwidth doubles (Lite+NetBW)? ===\n\n");
  FabricRequirements req;
  req.num_gpus = 32;
  req.per_gpu_bw_bytes_per_s = LiteNetBw().net_bw_bytes_per_s;
  Table table({"Link tech", "Circuit fabric capex", "Power", "$ per GPU"});
  for (const auto& link : {CopperLink(), PluggableLink(), CpoLink()}) {
    TopologyReport r = BuildFlatCircuitSwitched(req, CircuitSwitch(), link);
    table.AddRow({ToString(link.tech), FormatDouble(r.capex_usd, 0),
                  HumanPower(r.power_watts), FormatDouble(r.capex_usd / req.num_gpus, 0)});
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf("Copper cannot reach across 32-GPU fabrics in practice (2 m) -- the\n"
              "co-packaged-optics column is the deployable point, and it is what makes\n"
              "the paper's 'petabit-per-second efficient communication' economical.\n");
  return 0;
}
