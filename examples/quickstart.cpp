// Quickstart: model an LLM inference deployment on a Lite-GPU cluster in
// ~40 lines. Shows the three core API layers:
//   1. pick hardware (catalog or DeriveLite)
//   2. pick a model and a tensor-parallel plan
//   3. evaluate (roofline) directly, or declare a Scenario and let the
//      Runner search for the best config under SLOs

#include <cstdio>

#include "src/core/runner.h"
#include "src/core/scenario.h"
#include "src/hw/catalog.h"
#include "src/util/format.h"

int main() {
  using namespace litegpu;

  // 1. Hardware: the paper's Table-1 Lite-GPU (a quarter-scale H100).
  GpuSpec gpu = LiteMemBw();
  std::printf("GPU: %s  (%s, %s HBM, %s net)\n", gpu.name.c_str(),
              HumanFlops(gpu.flops).c_str(), HumanBandwidth(gpu.mem_bw_bytes_per_s).c_str(),
              HumanBandwidth(gpu.net_bw_bytes_per_s).c_str());

  // 2. Model + plan: Llama3-70B across 16 Lite-GPUs.
  TransformerSpec model = Llama3_70B();
  TpPlan plan = MakeTpPlan(model, 16).value();
  std::printf("Model: %s (%.1fB params), plan %s\n", model.name.c_str(),
              static_cast<double>(model.ParamCount()) / 1e9, plan.ToString().c_str());

  // 3a. Direct evaluation: one decode step for a batch of 64 at full context.
  WorkloadParams workload;
  EngineParams engine;
  DecodeResult step = EvaluateDecode(model, gpu, plan, 64, workload, engine);
  std::printf("\nDecode step, batch 64: TBT %s (%s-bound), %.0f tokens/s, "
              "%.2f tokens/s/SM, %s HBM/GPU\n",
              HumanTime(step.tbt_s).c_str(),
              ToString(step.timing.DominantBound()).c_str(), step.tokens_per_s,
              step.tokens_per_s_per_sm, HumanBytes(step.memory_needed_bytes).c_str());

  // 3b. Search via the Scenario API: declare WHAT to run, let the Runner
  // drive the engines. The same Scenario could be loaded from a JSON file
  // (see examples/scenarios/) or executed by `litegpu run`.
  auto scenario = ScenarioBuilder(StudyKind::kSearch)
                      .Name("quickstart")
                      .Model(model.name)
                      .Gpu(gpu.name)
                      .TtftSlo(1.0)
                      .TbtSlo(0.050)
                      .Build();
  RunReport report = Runner().Run(*scenario);
  const auto& pair = std::get<SearchStudyReport>(report.payload).pairs.front();
  if (pair.decode.found) {
    std::printf("\nBest decode config under TBT<=50ms: TP=%d, batch=%d -> "
                "%.2f tokens/s/SM (TBT %s)\n",
                pair.decode.best.tp_degree, pair.decode.best.batch,
                pair.decode.best.result.tokens_per_s_per_sm,
                HumanTime(pair.decode.best.result.tbt_s).c_str());
  }
  if (pair.prefill.found) {
    std::printf("Best prefill config under TTFT<=1s:   TP=%d, batch=%d -> "
                "%.2f tokens/s/SM (TTFT %s)\n",
                pair.prefill.best.tp_degree, pair.prefill.best.batch,
                pair.prefill.best.result.tokens_per_s_per_sm,
                HumanTime(pair.prefill.best.result.ttft_s).c_str());
  }
  return 0;
}
