// Phase-split pool planning with Lite-GPUs (paper Sections 3-4).
//
// Splitwise [40] runs prefill and decode on separate, differently-customized
// pools. This example sizes those pools for a target request rate using the
// paper's Table-1 parts: prefill on Lite+NetBW+FLOPS (compute-optimized),
// decode on Lite+MemBW (bandwidth-optimized), and compares against an
// all-H100 deployment at both quantizations.

#include <cstdio>

#include "src/core/search.h"
#include "src/hw/catalog.h"
#include "src/perf/model.h"
#include "src/sched/pools.h"
#include "src/util/format.h"
#include "src/util/table.h"

using namespace litegpu;

namespace {

InstanceCapacity MeasureCapacity(const TransformerSpec& model, const GpuSpec& prefill_gpu,
                                 const GpuSpec& decode_gpu) {
  SearchOptions options;
  PrefillSearchResult p = SearchPrefill(model, prefill_gpu, options);
  DecodeSearchResult d = SearchDecode(model, decode_gpu, options);
  if (!p.found || !d.found) {
    return InstanceCapacity{};
  }
  // Capacities come from the PerfModels of the searched best configurations
  // — the same analytic layer the serve study and the simulator consume.
  PerfModel prefill(model, prefill_gpu,
                    MakeTpPlan(model, p.best.tp_degree, options.kv_policy).value(),
                    options.workload, options.engine);
  PerfModel decode(model, decode_gpu,
                   MakeTpPlan(model, d.best.tp_degree, options.kv_policy).value(),
                   options.workload, options.engine);
  return CapacityFromPerfModels(prefill, p.best.batch, decode, d.best.batch);
}

}  // namespace

int main() {
  TransformerSpec model = Llama3_70B();
  std::printf("Splitwise-style pool planning for %s\n\n", model.name.c_str());

  InstanceCapacity h100 = MeasureCapacity(model, H100(), H100());
  InstanceCapacity lite = MeasureCapacity(model, LiteNetBwFlops(), LiteMemBw());

  std::printf("Per-instance capacities (from the Figure-3 search):\n");
  std::printf("  H100:  prefill %0.f tok/s on %d GPUs, decode %0.f tok/s on %d GPUs\n",
              h100.prefill_tokens_per_s, h100.prefill_gpus, h100.decode_tokens_per_s,
              h100.decode_gpus);
  std::printf("  Lite:  prefill %0.f tok/s on %d x Lite+NetBW+FLOPS, decode %0.f tok/s on "
              "%d x Lite+MemBW\n\n",
              lite.prefill_tokens_per_s, lite.prefill_gpus, lite.decode_tokens_per_s,
              lite.decode_gpus);

  Table table({"Req/s", "H100 plan (H100-equiv GPUs)", "H100 overprov (p/d)",
               "Lite plan (H100-equiv GPUs)", "Lite overprov (p/d)"});
  for (double rate : {2.0, 5.0, 10.0, 25.0, 60.0}) {
    PoolDemand demand;
    demand.requests_per_s = rate;
    PoolPlan coarse = SizePools(demand, h100);
    PoolPlan fine = SizePools(demand, lite);
    // Express both plans in H100-equivalents (4 Lites = 1 H100).
    double coarse_equiv = coarse.total_gpus;
    double fine_equiv = fine.total_gpus / 4.0;
    table.AddRow({FormatDouble(rate, 0),
                  std::to_string(coarse.prefill_instances) + "p+" +
                      std::to_string(coarse.decode_instances) + "d = " +
                      FormatDouble(coarse_equiv, 2),
                  FormatDouble(coarse.prefill_overprovision, 2) + " / " +
                      FormatDouble(coarse.decode_overprovision, 2),
                  std::to_string(fine.prefill_instances) + "p+" +
                      std::to_string(fine.decode_instances) + "d = " +
                      FormatDouble(fine_equiv, 2),
                  FormatDouble(fine.prefill_overprovision, 2) + " / " +
                      FormatDouble(fine.decode_overprovision, 2)});
  }
  std::printf("%s\n", table.ToText().c_str());

  std::printf("Reading: at low request rates the coarse H100 quantum forces heavy\n"
              "overprovisioning; Lite pools track demand in 4x finer steps AND use\n"
              "phase-customized silicon (the paper's 'racks of custom Lite-GPUs').\n");
  return 0;
}
