// Hot-spare policy exploration (paper Section 3, fault tolerance).
//
// Question: serving N model instances, how should a fixed spare BUDGET be
// spent -- few expensive H100 spares or many cheap Lite spares? Runs the
// Monte-Carlo availability simulator across spare budgets and reports
// availability, unmasked failures, and the capacity overhead of sparing.

#include <cstdio>

#include "src/hw/catalog.h"
#include "src/reliability/failure_model.h"
#include "src/reliability/mc_sim.h"
#include "src/util/format.h"
#include "src/util/table.h"

using namespace litegpu;

int main() {
  std::printf("Hot-spare exploration: 8 Llama3-70B instances, 300 simulated years\n\n");

  FailureParams failure;
  std::printf("Device AFR: H100 %s, Lite %s (area-scaled + per-device floor)\n\n",
              HumanPercent(GpuAfr(H100(), failure)).c_str(),
              HumanPercent(GpuAfr(Lite(), failure)).c_str());

  struct Fleet {
    GpuSpec gpu;
    int gpus_per_instance;
    double spare_unit_cost;  // in H100-equivalents
  };
  const Fleet fleets[] = {{H100(), 8, 1.0}, {Lite(), 32, 0.25}};

  Table table({"Fleet", "Spare budget (H100-equiv)", "Spares bought", "Availability",
               "Downtime (min/yr/inst)", "Unmasked failures", "Spare overhead"});
  for (const auto& fleet : fleets) {
    for (double budget : {0.0, 0.25, 0.5, 1.0, 2.0}) {
      int spares = static_cast<int>(budget / fleet.spare_unit_cost + 1e-9);
      McSimConfig config;
      config.gpus_per_instance = fleet.gpus_per_instance;
      config.num_instances = 8;
      config.num_spares = spares;
      config.sim_years = 300.0;
      config.failure = failure;
      McSimResult r = SimulateAvailability(fleet.gpu, config);
      double downtime_min = (1.0 - r.instance_availability) * 365.25 * 24.0 * 60.0;
      double fleet_gpus = fleet.gpus_per_instance * 8.0;
      table.AddRow({fleet.gpu.name, FormatDouble(budget, 2), std::to_string(spares),
                    FormatDouble(r.instance_availability, 5), FormatDouble(downtime_min, 1),
                    std::to_string(r.unmasked_failures),
                    HumanPercent(spares / fleet_gpus)});
    }
    table.AddSeparator();
  }
  std::printf("%s\n", table.ToText().c_str());

  std::printf("Reading: a quarter-H100 budget already buys one Lite spare (enough to\n"
              "mask nearly all failures), while the H100 fleet needs a full-GPU budget\n"
              "for its first spare. 'This reduces the proportional overhead of\n"
              "including spare Lite-GPUs' -- Section 3.\n");
  return 0;
}
