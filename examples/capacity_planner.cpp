// Capacity planning with the ClusterDesigner: the whole-paper roll-up.
//
// For one model, compare decode-serving instances built from every Table-1
// GPU on performance, manufacturing cost, network cost, power, reliability,
// and the bottom line ($/Mtok and J/token) -- the "performance per $-cost"
// analysis Section 4 calls the primary metric for cloud operators.

#include <cstdio>

#include "src/core/runner.h"
#include "src/core/scenario.h"
#include "src/util/format.h"

using namespace litegpu;

int main() {
  // One declarative scenario covers all three case-study models (the empty
  // model list defaults to them); the Runner produces a Table-1 comparison
  // per model.
  auto scenario = ScenarioBuilder(StudyKind::kDesign).Name("capacity-planner").Build();
  RunReport report = Runner().Run(*scenario);
  const auto& design = std::get<DesignStudyReport>(report.payload);

  for (const auto& per_model : design.per_model) {
    const auto& reports = per_model.clusters;
    std::printf("=== %s decode serving: Table-1 GPU comparison ===\n",
                per_model.model.c_str());
    std::printf("%s\n", ClusterComparisonToText(reports).c_str());

    // Headline ratios vs H100.
    const ClusterDesignReport* h100 = nullptr;
    for (const auto& r : reports) {
      if (r.gpu_name == "H100" && r.feasible) {
        h100 = &r;
      }
    }
    if (h100 != nullptr) {
      for (const auto& r : reports) {
        if (!r.feasible || r.gpu_name == "H100") {
          continue;
        }
        std::printf("  %-18s perf/SM %.2fx, $/Mtok %.2fx, J/token %.2fx vs H100\n",
                    r.gpu_name.c_str(),
                    r.tokens_per_s_per_sm / h100->tokens_per_s_per_sm,
                    r.usd_per_mtok / h100->usd_per_mtok,
                    r.joules_per_token / h100->joules_per_token);
      }
    }
    std::printf("\n");
  }

  std::printf("Note: dollar figures are manufacturing-derived with a uniform market\n"
              "multiplier; treat the RATIOS as the result, per DESIGN.md. The paper\n"
              "defers absolute TCO and so do we.\n");
  return 0;
}
