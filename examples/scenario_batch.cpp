// Scenario batch: the declarative front door end to end.
//
//   1. build Scenarios fluently (or load them from examples/scenarios/*.json)
//   2. fan the batch out with RunScenarios (bit-identical at any thread count)
//   3. consume the uniform RunReports as text or JSON
//
// This is the same pipeline `litegpu run <scenario.json> --json` drives.

#include <cstdio>
#include <vector>

#include "src/core/runner.h"
#include "src/core/scenario.h"

using namespace litegpu;

int main() {
  // A miniature study suite: the paper's two perf figures plus the silicon
  // economics, declared as data.
  std::vector<Scenario> batch;
  batch.push_back(*ScenarioBuilder(StudyKind::kFig3a).Name("fig3a").Build());
  batch.push_back(*ScenarioBuilder(StudyKind::kFig3b).Name("fig3b").Build());
  batch.push_back(*ScenarioBuilder(StudyKind::kYield).Name("yield").Build());

  // Builder validation catches unrunnable scenarios before anything runs.
  std::string error;
  auto bad = ScenarioBuilder(StudyKind::kSearch).Model("Llama5-9000B").Build(&error);
  std::printf("validation demo: %s -> %s\n\n", bad ? "built" : "rejected", error.c_str());

  ExecPolicy exec;  // 0 = all cores; scenarios' inner sweeps run serial
  std::vector<RunReport> reports = RunScenarios(batch, exec);

  for (const RunReport& report : reports) {
    std::printf("%s\n", report.ToText().c_str());
  }

  // Structured output: every report renders to JSON for downstream tooling.
  std::printf("yield report as JSON:\n%s\n", reports.back().ToJson().Dump().c_str());
  return 0;
}
